(* µproxy metadata fast path: the cache must be invisible except in cost.
   Every test drives a real ensemble through the client stack and checks
   (a) hits genuinely bypass the directory servers and (b) no mutation —
   local, cross-client past the lease, or under a chaos schedule — can
   make a cached answer stale. *)

open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Client = Slice_workload.Client
module Ensemble = Slice.Ensemble
module Proxy = Slice.Proxy
module Dirserver = Slice_dir.Dirserver
module Reconfig = Slice_reconfig.Reconfig
module Plan = Slice_reconfig.Plan

let check_int64 = Alcotest.(check int64)
let root = Ensemble.root

let mk ?(ttl = 2.0) ?(capacity = 4096) ?net_params ?(seed = 7) ?(dir_servers = 2) () =
  Ensemble.create
    {
      Ensemble.default_config with
      seed;
      net_params;
      storage_nodes = 2;
      smallfile_servers = 0;
      dir_servers;
      proxy_params =
        { Slice.Params.default with meta_cache_ttl = ttl; name_cache_capacity = capacity };
    }

let client ens name =
  let host, proxy = Ensemble.add_client ens ~name in
  (Client.create host ~server:(Ensemble.virtual_addr ens) (), proxy)

(* ---- hits are served at the proxy ---- *)

let hit_avoids_dir_ops () =
  let ens = mk () in
  let eng = Ensemble.engine ens in
  let cl, proxy = client ens "c0" in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "hot") in
      ignore (ok_or_fail "warm" (Client.lookup cl root "hot"));
      let d0 = Ensemble.dir_ops_served ens in
      for _ = 1 to 10 do
        let fh', _ = ok_or_fail "lookup" (Client.lookup cl root "hot") in
        check_int64 "same file" fh.Fh.file_id fh'.Fh.file_id;
        ignore (ok_or_fail "getattr" (Client.getattr cl fh));
        ignore (ok_or_fail "access" (Client.access cl fh))
      done;
      check_int "no dir traffic on hits" d0 (Ensemble.dir_ops_served ens);
      let st = Proxy.meta_cache_stats proxy in
      check_bool "hits counted" true (st.Proxy.hits >= 30))

let negative_entry_then_create () =
  let ens = mk () in
  let eng = Ensemble.engine ens in
  let cl, proxy = client ens "c0" in
  run_on eng (fun () ->
      expect_err "first miss hits server" Nfs.ERR_NOENT (Client.lookup cl root "ghost");
      let d1 = Ensemble.dir_ops_served ens in
      expect_err "negative cached" Nfs.ERR_NOENT (Client.lookup cl root "ghost");
      check_int "NOENT served at proxy" d1 (Ensemble.dir_ops_served ens);
      check_bool "negative hit counted" true
        ((Proxy.meta_cache_stats proxy).Proxy.negative_hits >= 1);
      (* create must kill the negative entry synchronously *)
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "ghost") in
      let fh', _ = ok_or_fail "post-create lookup" (Client.lookup cl root "ghost") in
      check_int64 "resolves to new file" fh.Fh.file_id fh'.Fh.file_id)

let ttl_zero_disables () =
  let ens = mk ~ttl:0.0 () in
  let eng = Ensemble.engine ens in
  let cl, proxy = client ens "c0" in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "f") in
      let d0 = Ensemble.dir_ops_served ens in
      ignore (ok_or_fail "lookup" (Client.lookup cl root "f"));
      ignore (ok_or_fail "getattr" (Client.getattr cl fh));
      check_bool "every op reached the servers" true (Ensemble.dir_ops_served ens >= d0 + 2);
      let st = Proxy.meta_cache_stats proxy in
      check_int "no hits" 0 st.Proxy.hits;
      check_int "no misses either: fast path off" 0 st.Proxy.misses)

(* ---- write-through invalidation ---- *)

let rename_coherence () =
  let ens = mk () in
  let eng = Ensemble.engine ens in
  let cl, _ = client ens "c0" in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "a") in
      ignore (ok_or_fail "warm" (Client.lookup cl root "a"));
      ok_or_fail "rename" (Client.rename cl root "a" root "b");
      expect_err "old name gone immediately" Nfs.ERR_NOENT (Client.lookup cl root "a");
      let fh', _ = ok_or_fail "new name" (Client.lookup cl root "b") in
      check_int64 "same file behind new name" fh.Fh.file_id fh'.Fh.file_id)

let remove_coherence () =
  let ens = mk () in
  let eng = Ensemble.engine ens in
  let cl, _ = client ens "c0" in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "gone") in
      ignore (ok_or_fail "warm name" (Client.lookup cl root "gone"));
      ignore (ok_or_fail "warm attr" (Client.getattr cl fh));
      ok_or_fail "remove" (Client.remove cl root "gone");
      expect_err "name gone immediately" Nfs.ERR_NOENT (Client.lookup cl root "gone");
      (* the attr entry was dropped too: a getattr must consult the
         server, not answer Ok from a corpse *)
      let d0 = Ensemble.dir_ops_served ens in
      (match Client.getattr cl fh with
      | Ok _ | Error _ -> ());
      check_bool "getattr went to the server" true (Ensemble.dir_ops_served ens > d0))

let setattr_coherence () =
  let ens = mk () in
  let eng = Ensemble.engine ens in
  let cl, _ = client ens "c0" in
  run_on eng (fun () ->
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "s") in
      ignore (ok_or_fail "warm attr" (Client.getattr cl fh));
      ignore (ok_or_fail "setattr" (Client.setattr cl fh (Nfs.sattr_size 12345L)));
      let a = ok_or_fail "getattr after setattr" (Client.getattr cl fh) in
      check_int64 "size is the truncated size" 12345L a.Nfs.size)

(* ---- leases bound cross-client staleness ---- *)

let ttl_expiry_refetches () =
  let ens = mk ~ttl:1.0 () in
  let eng = Ensemble.engine ens in
  let cl, proxy = client ens "c0" in
  run_on eng (fun () ->
      ignore (ok_or_fail "create" (Client.create_file cl root "t"));
      ignore (ok_or_fail "warm" (Client.lookup cl root "t"));
      let d0 = Ensemble.dir_ops_served ens in
      ignore (ok_or_fail "cached" (Client.lookup cl root "t"));
      check_int "within lease: proxy answers" d0 (Ensemble.dir_ops_served ens);
      Engine.sleep eng 1.5;
      ignore (ok_or_fail "expired" (Client.lookup cl root "t"));
      check_bool "past lease: server answers" true (Ensemble.dir_ops_served ens > d0);
      check_bool "stale counted" true ((Proxy.meta_cache_stats proxy).Proxy.stale >= 1))

let cross_client_staleness_bounded () =
  let ens = mk ~ttl:1.0 () in
  let eng = Ensemble.engine ens in
  let ca, _ = client ens "a" in
  let cb, _ = client ens "b" in
  run_on eng (fun () ->
      ignore (ok_or_fail "create" (Client.create_file ca root "x"));
      ignore (ok_or_fail "a warms its cache" (Client.lookup ca root "x"));
      (* b's remove invalidates b's proxy; a's entry survives — but only
         until its lease runs out (NFS close-to-open: a window no wider
         than the TTL is permitted, and beyond it truth is restored) *)
      ok_or_fail "b removes" (Client.remove cb root "x");
      Engine.sleep eng 1.5;
      expect_err "a sees the remove after the lease" Nfs.ERR_NOENT (Client.lookup ca root "x"))

(* ---- chaos: coherence must hold under loss and a dir-server crash ---- *)

let chaos_coherence () =
  let ens =
    mk ~net_params:{ Net.default_params with drop_prob = 0.05 } ~seed:23 ()
  in
  let eng = Ensemble.engine ens in
  let cl, _ = client ens "c0" in
  (* fault schedule on its own fiber: the workload below is closed-loop,
     so the crash must not wait on it *)
  Engine.spawn eng (fun () ->
      Engine.sleep eng 0.05;
      Ensemble.crash_dir ens 1;
      Engine.sleep eng 1.0;
      Ensemble.recover_dir ens 1);
  run_on eng (fun () ->
      for i = 1 to 30 do
        let name = Printf.sprintf "f%03d" i in
        let fh, _ = ok_or_fail "create" (Client.create_file cl root name) in
        ignore (ok_or_fail "setattr" (Client.setattr cl fh (Nfs.sattr_size (Int64.of_int i))));
        let a = ok_or_fail "getattr" (Client.getattr cl fh) in
        check_int64 "attr never stale" (Int64.of_int i) a.Nfs.size;
        let name' = Printf.sprintf "g%03d" i in
        ok_or_fail "rename" (Client.rename cl root name root name');
        expect_err "old name never stale" Nfs.ERR_NOENT (Client.lookup cl root name);
        let fh', _ = ok_or_fail "new name resolves" (Client.lookup cl root name') in
        check_int64 "same file" fh.Fh.file_id fh'.Fh.file_id;
        ok_or_fail "remove" (Client.remove cl root name');
        expect_err "removed name never stale" Nfs.ERR_NOENT (Client.lookup cl root name')
      done;
      (* every op above was individually asserted; the client's error
         counter also includes our intentional NOENT probes, so it is not
         checked here *)
      check_bool "chaos actually bit" true (Client.retransmissions cl > 0))

(* ---- fencing: an epoch bump must flush every cached incarnation ---- *)

let fence_epoch_invalidation () =
  (* a TTL far longer than the test: without fencing these entries would
     stay live across the takeover and serve answers minted by a deposed
     directory server *)
  let ens = mk ~ttl:60.0 () in
  let eng = Ensemble.engine ens in
  let rc = Reconfig.attach ens in
  let cl, proxy = client ens "c0" in
  run_on eng (fun () ->
      let names = List.init 12 (Printf.sprintf "f%02d") in
      let fhs =
        List.map
          (fun n ->
            let fh, _ = ok_or_fail "create" (Client.create_file cl root n) in
            ignore (ok_or_fail "warm" (Client.lookup cl root n));
            (n, fh))
          names
      in
      let d0 = Ensemble.dir_ops_served ens in
      List.iter (fun (n, _) -> ignore (ok_or_fail "hit" (Client.lookup cl root n))) fhs;
      check_int "warm cache serves hits" d0 (Ensemble.dir_ops_served ens);
      (* dir 0 dies; dir 1 claims its sites under a bumped fencing epoch;
         the victim then revives as a zombie still holding its old,
         expired lease *)
      let dirs = Ensemble.dirs ens in
      let epoch0 = Dirserver.lease_epoch dirs.(0) in
      Ensemble.crash_dir ens 0;
      let moved = Reconfig.takeover rc Plan.Dir ~victim:0 ~standby:1 in
      check_bool "victim owned sites" true (moved > 0);
      Dirserver.set_lease dirs.(0) ~epoch:epoch0 ~until:(Engine.now eng -. 1.0);
      Ensemble.recover_dir ens 0;
      (* the proxy's table still routes the moved sites at the zombie:
         the first mutation it bounces forces a table refresh, the epoch
         advance flushes the metadata caches, and the retry lands on the
         successor — the client sees only success *)
      List.iter
        (fun n -> ignore (ok_or_fail "create after takeover" (Client.create_file cl root (n ^ "x"))))
        names;
      check_bool "zombie bounced the stale route" true (Dirserver.fence_bounces dirs.(0) > 0);
      check_bool "epoch bump flushed the caches" true (Proxy.fence_invalidations proxy >= 1);
      (* flushed entries refetch from the live server — and still resolve
         to the same files, so the flush lost nothing *)
      let d1 = Ensemble.dir_ops_served ens in
      List.iter
        (fun (n, fh) ->
          let fh', _ = ok_or_fail "post-fence lookup" (Client.lookup cl root n) in
          check_int64 "same file after failover" fh.Fh.file_id fh'.Fh.file_id)
        fhs;
      check_bool "flushed entries hit the server again" true (Ensemble.dir_ops_served ens > d1))

let suite =
  [
    Alcotest.test_case "hit avoids dir ops" `Quick hit_avoids_dir_ops;
    Alcotest.test_case "negative entry then create" `Quick negative_entry_then_create;
    Alcotest.test_case "ttl zero disables" `Quick ttl_zero_disables;
    Alcotest.test_case "rename coherence" `Quick rename_coherence;
    Alcotest.test_case "remove coherence" `Quick remove_coherence;
    Alcotest.test_case "setattr coherence" `Quick setattr_coherence;
    Alcotest.test_case "ttl expiry refetches" `Quick ttl_expiry_refetches;
    Alcotest.test_case "cross-client staleness bounded" `Quick cross_client_staleness_bounded;
    Alcotest.test_case "chaos coherence" `Quick chaos_coherence;
    Alcotest.test_case "fence epoch invalidation" `Quick fence_epoch_invalidation;
  ]

open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Trace = Slice_trace.Trace
module Json = Slice_util.Json
module Chaos = Slice_experiments.Chaos
module Tracing = Slice_experiments.Tracing

(* ---- null sentinel: the disabled path must be inert all the way down ---- *)

let null_is_inert () =
  check_bool "root of None is null" false (Trace.is_live (Trace.root None ~op:"x" ~site:"s"));
  let c = Trace.child Trace.null ~hop:"server" ~site:"s" () in
  check_bool "children of null are null" false (Trace.is_live c);
  (* none of these may raise or record *)
  Trace.finish c;
  Trace.emit Trace.null ~hop:"disk" ~site:"s" ~start:0.0 ~stop:1.0 ();
  Trace.bind_xid Trace.null 7;
  check_bool "xid lookup on None tracer" false (Trace.is_live (Trace.span_of_xid None 7))

(* ---- satellite 1 regression: the xid counter lives in Net.t ----

   fresh_xid used to draw from a process-global counter, so a second
   simulation in the same process started where the first left off and
   its packet payloads (which embed the xid) diverged from a fresh run's. *)

let xid_stream_restarts_per_net () =
  let seq () =
    let eng = Engine.create () in
    let net = Net.create eng () in
    let h = Net.add_node net ~name:"h" in
    let rpc = Rpc.create net h ~port:5 in
    List.init 8 (fun _ -> Rpc.fresh_xid rpc)
  in
  check_bool "back-to-back sims draw identical xid streams" true (seq () = seq ())

(* ---- span-tree well-formedness under a chaotic fault schedule ---- *)

let tree_well_formed_under_chaos () =
  Slice.Params.trace_force := true;
  let r =
    Fun.protect
      ~finally:(fun () -> Slice.Params.trace_force := false)
      (fun () ->
        ignore (Slice.Ensemble.drain_traces ());
        Chaos.run_untar
          ~cfg:{ Chaos.default_config with crash_node = Some (Chaos.Dir 0) }
          ())
  in
  check_int "chaos oracle still clean" 0 r.Chaos.errors;
  let traces = Slice.Ensemble.drain_traces () in
  check_bool "chaos run produced a trace" true (traces <> []);
  let eps = 1e-9 in
  List.iter
    (fun tr ->
      let infos = Trace.infos tr in
      check_bool "spans recorded" true (infos <> []);
      let by_id = Hashtbl.create (List.length infos) in
      List.iter (fun (i : Trace.info) -> Hashtbl.replace by_id i.Trace.i_id i) infos;
      List.iter
        (fun (i : Trace.info) ->
          check_bool "id positive" true (i.Trace.i_id > 0);
          check_bool "duration non-negative" true (i.Trace.i_stop >= i.Trace.i_start -. eps);
          if i.Trace.i_parent = 0 then
            check_string "roots carry the request hop" "request" i.Trace.i_hop
          else
            match Hashtbl.find_opt by_id i.Trace.i_parent with
            | None -> Alcotest.failf "span %d: dangling parent %d" i.Trace.i_id i.Trace.i_parent
            | Some p ->
                check_bool "parent opened first" true
                  (p.Trace.i_start <= i.Trace.i_start +. eps);
                (* a finished parent must cover its children; an expired or
                   superseded root may be cut off while a child is parked *)
                if p.Trace.i_outcome = "ok" || p.Trace.i_outcome = "error" then
                  check_bool "child inside finished parent" true
                    (i.Trace.i_stop <= p.Trace.i_stop +. eps))
        infos)
    traces

(* ---- byte determinism: trace dump + metrics registry ---- *)

let dumps_byte_identical () =
  let once () =
    let t = Tracing.compute ~scale:0.05 () in
    Json.to_string (Tracing.json_of t)
  in
  let a = once () in
  let b = once () in
  check_bool "trace-report JSON byte-identical across runs" true (String.equal a b);
  check_bool "report non-trivial" true (String.length a > 1000)

let suite =
  [
    ("null sentinel inert", `Quick, null_is_inert);
    ("xid stream restarts per net", `Quick, xid_stream_restarts_per_net);
    ("span trees well-formed under chaos", `Slow, tree_well_formed_under_chaos);
    ("trace+metrics dumps byte-identical", `Slow, dumps_byte_identical);
  ]

examples/failover.mli:

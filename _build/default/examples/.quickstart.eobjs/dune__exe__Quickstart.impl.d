examples/quickstart.ml: Int64 List Printf Slice Slice_nfs Slice_sim Slice_workload String

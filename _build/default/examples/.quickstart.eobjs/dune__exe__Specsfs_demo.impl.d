examples/specsfs_demo.ml: Array Format Int64 Printf Slice Slice_smallfile Slice_workload

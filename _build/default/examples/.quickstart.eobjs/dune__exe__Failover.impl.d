examples/failover.ml: Array List Printf Slice Slice_dir Slice_nfs Slice_sim Slice_workload

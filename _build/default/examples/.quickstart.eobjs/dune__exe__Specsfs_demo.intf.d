examples/specsfs_demo.mli:

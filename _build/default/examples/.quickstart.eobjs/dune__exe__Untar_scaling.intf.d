examples/untar_scaling.mli:

examples/untar_scaling.ml: Array List Printf Slice Slice_dir Slice_sim Slice_workload String

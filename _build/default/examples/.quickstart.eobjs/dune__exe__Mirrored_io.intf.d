examples/mirrored_io.mli:

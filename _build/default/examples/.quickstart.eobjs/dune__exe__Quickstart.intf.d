examples/quickstart.mli:

examples/mirrored_io.ml: Array Int64 List Printf Slice Slice_nfs Slice_sim Slice_storage Slice_workload

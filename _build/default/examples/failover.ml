(* Dataless file managers and fast failover (Section 2.3): a directory
   server's state is entirely reconstructible from its backing objects
   plus its write-ahead log. This example builds a name space, crashes a
   directory server mid-flight, recovers it from the surviving log, and
   keeps working — clients only see retransmissions.

   Run with: dune exec examples/failover.exe *)

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Client = Slice_workload.Client
module Dirserver = Slice_dir.Dirserver

let () =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 0;
        smallfile_servers = 0;
        dir_servers = 2;
        proxy_params =
          { Slice.Params.default with threshold = 0; name_policy = Slice.Params.Name_hashing };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let host, _ = Slice.Ensemble.add_client ens ~name:"client" in
  let cl = Client.create host ~server:(Slice.Ensemble.virtual_addr ens) () in
  let dirs = Slice.Ensemble.dirs ens in
  Engine.spawn eng (fun () ->
      let ok label = function
        | Ok v -> v
        | Error st -> failwith (label ^ ": " ^ Nfs.status_name st)
      in
      (* build some state spread over both directory servers *)
      let d, _ = ok "mkdir" (Client.mkdir cl Slice.Ensemble.root "project") in
      for i = 0 to 39 do
        ignore (ok "create" (Client.create_file cl d (Printf.sprintf "src%02d.ml" i)))
      done;
      Printf.printf "before crash: %d + %d name entries on the two servers\n"
        (Dirserver.entry_count dirs.(0))
        (Dirserver.entry_count dirs.(1));

      (* crash server 0: volatile cells are gone; only the synced log and
         backing objects survive *)
      Dirserver.crash dirs.(0);
      Printf.printf "server 0 crashed (volatile state dropped); recovering from its log...\n";
      Dirserver.recover dirs.(0);
      Engine.sleep eng 0.1;
      Printf.printf "after recovery: %d + %d name entries\n"
        (Dirserver.entry_count dirs.(0))
        (Dirserver.entry_count dirs.(1));

      (* the volume is intact and writable *)
      let fh, _ = ok "lookup survives" (Client.lookup cl d "src07.ml") in
      Printf.printf "lookup src07.ml -> fileid %Ld (state rebuilt from the journal)\n"
        fh.Slice_nfs.Fh.file_id;
      ignore (ok "create after recovery" (Client.create_file cl d "post_crash.ml"));
      let entries = ok "readdir" (Client.readdir_all cl d) in
      Printf.printf "directory lists %d entries; client saw %d retransmissions, 0 data loss\n"
        (List.length entries) (Client.retransmissions cl));
  Engine.run eng;
  print_endline "failover: done"

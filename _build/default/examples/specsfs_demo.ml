(* SPECsfs97 against a Slice ensemble: the paper's whole-system benchmark
   (Figures 5 and 6) in miniature. Shows the functional decomposition at
   work: one load, three request classes, three server populations.

   Run with: dune exec examples/specsfs_demo.exe *)

module Client = Slice_workload.Client
module Specsfs = Slice_workload.Specsfs

let () =
  let ens =
    Slice.Ensemble.create
      { Slice.Ensemble.default_config with storage_nodes = 4; dir_servers = 1; smallfile_servers = 2 }
  in
  let eng = Slice.Ensemble.engine ens in
  let clients_and_proxies =
    Array.init 4 (fun i -> Slice.Ensemble.add_client ens ~name:(Printf.sprintf "loadgen%d" i))
  in
  let clients =
    Array.map
      (fun (host, _) -> Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ())
      clients_and_proxies
  in
  let cfg =
    {
      Specsfs.default_config with
      offered_iops = 800.0;
      processes = 8;
      duration = 3.0;
      warmup = 0.5;
      bytes_per_iops = 100_000.0;
    }
  in
  Printf.printf "SPECsfs97 mix against Slice-4 (1 dir server, 2 small-file servers)...\n%!";
  let r = Specsfs.run eng ~clients ~root:Slice.Ensemble.root cfg in
  Format.printf "%a@." Specsfs.pp_result r;

  (* where the µproxies sent the traffic: the functional decomposition *)
  let storage, smallfile, dir =
    Array.fold_left
      (fun (s, f, d) (_, px) ->
        ( s + Slice.Proxy.routed_to_storage px,
          f + Slice.Proxy.routed_to_smallfile px,
          d + Slice.Proxy.routed_to_dir px ))
      (0, 0, 0) clients_and_proxies
  in
  let total = float_of_int (storage + smallfile + dir) in
  Printf.printf
    "request classes: %.0f%% name space -> directory servers, %.0f%% small-file I/O,\n\
    \                 %.0f%% bulk I/O direct to storage nodes\n"
    (100.0 *. float_of_int dir /. total)
    (100.0 *. float_of_int smallfile /. total)
    (100.0 *. float_of_int storage /. total);
  Array.iter
    (fun sf ->
      Printf.printf "small-file server: %d files, %.1f MB logical / %.1f MB physical\n"
        (Slice_smallfile.Smallfile.file_count sf)
        (Int64.to_float (Slice_smallfile.Smallfile.logical_bytes sf) /. 1e6)
        (Int64.to_float (Slice_smallfile.Smallfile.bytes_stored sf) /. 1e6))
    (Slice.Ensemble.smallfiles ens);
  print_endline "specsfs_demo: done"

(* Per-file mirrored striping (Section 3.1): the attribute-based policy
   where the µproxy replicates each block of a mirrored file on two
   storage nodes, duplicating writes and alternating reads between the
   replicas — with failure atomicity through the coordinator's
   intention log.

   Run with: dune exec examples/mirrored_io.exe *)

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Client = Slice_workload.Client
module Obsd = Slice_storage.Obsd

let mb = 1024 * 1024

let () =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 8;
        smallfile_servers = 0;
        mirror_new_files = true (* new regular files get the mirrored policy flag *);
        proxy_params = { Slice.Params.default with threshold = 0 };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let host, proxy = Slice.Ensemble.add_client ens ~name:"client" in
  let cl = Client.create host ~server:(Slice.Ensemble.virtual_addr ens) () in
  Engine.spawn eng (fun () ->
      let fh, _ =
        match Client.create_file cl Slice.Ensemble.root "database.img" with
        | Ok v -> v
        | Error st -> failwith (Nfs.status_name st)
      in
      Printf.printf "created %s — fh carries the per-file mirror flag: %b\n" "database.img"
        fh.Slice_nfs.Fh.mirrored;

      let bytes = Int64.of_int (32 * mb) in
      let t0 = Client.now cl in
      Client.sequential_write cl fh ~bytes;
      let t1 = Client.now cl in
      Printf.printf "mirrored write: %.1f MB/s (every block written to both replicas)\n"
        (32.0 /. (t1 -. t0));

      (* where did the data land? *)
      let holders =
        Array.to_list (Slice.Ensemble.storage ens)
        |> List.filteri (fun _ node -> Obsd.object_size node fh <> None)
        |> List.length
      in
      Printf.printf "replicas on %d of 8 storage nodes; %d duplicate packets emitted\n" holders
        (Slice.Proxy.mirror_duplicates proxy);

      (* cold read: alternates between the mirrors to balance load *)
      Array.iter Obsd.drop_caches (Slice.Ensemble.storage ens);
      let t2 = Client.now cl in
      Client.sequential_read cl fh ~bytes;
      Printf.printf "mirrored read:  %.1f MB/s (alternating between replicas;\n"
        (32.0 /. (Client.now cl -. t2));
      print_endline "  the skipped half of each node's prefetch is the paper's";
      print_endline "  'unused prefetched data' that lowers mirrored bandwidth)";

      (* the coordinator guarded the multi-site writes *)
      (match Slice.Ensemble.coordinator ens with
      | Some coord ->
          Printf.printf
            "coordinator: %d intention(s) logged for the mirrored writes, %d still open\n"
            (Slice_storage.Coordinator.intents_logged coord)
            (Slice_storage.Coordinator.pending_intents coord)
      | None -> ());
      Printf.printf "client errors: %d, retransmissions: %d\n" (Client.errors cl)
        (Client.retransmissions cl));
  Engine.run eng;
  print_endline "mirrored_io: done"

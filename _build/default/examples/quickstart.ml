(* Quickstart: bring up a Slice ensemble, mount it from a client, and do
   ordinary file-system work through the µproxy — the ensemble looks like
   one NFS server at a single virtual address.

   Run with: dune exec examples/quickstart.exe *)

module Nfs = Slice_nfs.Nfs
module Client = Slice_workload.Client
module Engine = Slice_sim.Engine

let () =
  (* A small ensemble: 4 storage nodes (8 disks each), 1 directory
     server, 2 small-file servers. *)
  let ens = Slice.Ensemble.create Slice.Ensemble.default_config in
  let eng = Slice.Ensemble.engine ens in
  let host, proxy = Slice.Ensemble.add_client ens ~name:"client0" in
  let cl = Client.create host ~server:(Slice.Ensemble.virtual_addr ens) () in
  let root = Slice.Ensemble.root in

  Engine.spawn eng (fun () ->
      let ok = function
        | Ok v -> v
        | Error st -> failwith ("NFS error: " ^ Nfs.status_name st)
      in
      (* Make a home directory and a file in it. *)
      let home, _ = ok (Client.mkdir cl root "home") in
      let fh, _ = ok (Client.create_file cl home "hello.txt") in

      (* Write real bytes (small file: lands on a small-file server). *)
      let message = "Interposed request routing for scalable network storage.\n" in
      ignore (ok (Client.write_at cl fh ~off:0L ~data:(Nfs.Data message) ()));
      ignore (ok (Client.commit cl fh));

      (* Read it back through the µproxy. *)
      (match ok (Client.read_at cl fh ~off:0L ~count:(String.length message)) with
      | Nfs.Data s, _eof when s = message -> print_endline "read-back: OK"
      | Nfs.Data s, _ -> Printf.printf "read-back MISMATCH: %S\n" s
      | Nfs.Synthetic n, _ -> Printf.printf "read-back synthetic (%d bytes)\n" n);

      (* Bulk data: a 16 MB file striped over the storage array. *)
      let big, _ = ok (Client.create_file cl home "big.dat") in
      let t0 = Client.now cl in
      Client.sequential_write cl big ~bytes:(Int64.of_int (16 * 1024 * 1024));
      let t1 = Client.now cl in
      Client.sequential_read cl big ~bytes:(Int64.of_int (16 * 1024 * 1024));
      let t2 = Client.now cl in
      Printf.printf "bulk write: %.1f MB/s\n" (16.0 /. (t1 -. t0));
      Printf.printf "bulk read:  %.1f MB/s\n" (16.0 /. (t2 -. t1));

      (* List the directory. *)
      let entries = ok (Client.readdir_all cl home) in
      Printf.printf "readdir(home): %s\n"
        (String.concat ", " (List.map (fun (e : Nfs.entry) -> e.Nfs.entry_name) entries));

      (* Where did requests go? *)
      Printf.printf
        "µproxy routing: %d to storage nodes, %d to small-file servers, %d to directory servers\n"
        (Slice.Proxy.routed_to_storage proxy)
        (Slice.Proxy.routed_to_smallfile proxy)
        (Slice.Proxy.routed_to_dir proxy);
      Printf.printf "client ops: %d (errors %d, retransmits %d)\n"
        (Client.ops_completed cl) (Client.errors cl) (Client.retransmissions cl));
  Engine.run eng;
  print_endline "quickstart: done"

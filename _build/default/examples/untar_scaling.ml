(* The paper's motivating name-space workload: parallel "untar" processes
   unpacking source trees of small files. Shows how interposed request
   routing spreads one shared volume's name-space load over multiple
   directory servers — without volume boundaries — and compares the two
   routing policies, mkdir switching and name hashing.

   Run with: dune exec examples/untar_scaling.exe *)

module Engine = Slice_sim.Engine
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar

let procs = 8
let client_hosts = 4

let run_config ~label ~dir_servers ~policy ~mkdir_p =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 0;
        smallfile_servers = 0;
        dir_servers;
        proxy_params = { Slice.Params.default with threshold = 0; name_policy = policy; mkdir_p };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let pairs =
    Array.init client_hosts (fun i ->
        Slice.Ensemble.add_client ens ~name:(Printf.sprintf "client%d" i))
  in
  let spec = Untar.scaled_spec 0.02 in
  let latencies = Array.make procs 0.0 in
  Engine.spawn eng (fun () ->
      Slice_sim.Fiber.join_all eng
        (List.init procs (fun p () ->
             let host, _ = pairs.(p mod client_hosts) in
             let cl =
               Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ~port:(1000 + p) ()
             in
             latencies.(p) <-
               Untar.run cl ~root:Slice.Ensemble.root ~name:(Printf.sprintf "tree%02d" p) spec)));
  Engine.run eng;
  let avg = Array.fold_left ( +. ) 0.0 latencies /. float_of_int procs in
  let per_site =
    Array.to_list (Slice.Ensemble.dirs ens)
    |> List.map (fun d -> string_of_int (Slice_dir.Dirserver.ops_served d))
    |> String.concat " "
  in
  Printf.printf "%-28s avg untar latency %6.2fs   ops per dir server: %s\n%!" label avg per_site

let () =
  Printf.printf "%d untar processes, %d files each (scaled FreeBSD-src trees)\n\n" procs
    (Untar.scaled_spec 0.02).Untar.files;
  run_config ~label:"1 dir server" ~dir_servers:1 ~policy:Slice.Params.Mkdir_switching
    ~mkdir_p:1.0;
  run_config ~label:"2 dir servers (switching)" ~dir_servers:2 ~policy:Slice.Params.Mkdir_switching
    ~mkdir_p:0.5;
  run_config ~label:"4 dir servers (switching)" ~dir_servers:4 ~policy:Slice.Params.Mkdir_switching
    ~mkdir_p:0.25;
  run_config ~label:"4 dir servers (hashing)" ~dir_servers:4 ~policy:Slice.Params.Name_hashing
    ~mkdir_p:0.0;
  print_endline "\nMore directory servers flatten the latency; the load spreads without";
  print_endline "user-visible volume boundaries (no mount points, link/rename work everywhere)."

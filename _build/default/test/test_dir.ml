open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Routekey = Slice_nfs.Routekey
module Host = Slice_storage.Host
module Dirserver = Slice_dir.Dirserver

type rig = {
  eng : Engine.t;
  net : Net.t;
  dirs : Dirserver.t array;
  addrs : Slice_net.Packet.addr array;
  rpc : Rpc.t;
  policy : Dirserver.policy;
}

let mk_rig ?(nsites = 2) ?(policy = Dirserver.Name_hashing) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let hosts =
    Array.init nsites (fun i -> Host.create net ~name:(Printf.sprintf "dir%d" i) ~disks:1 ())
  in
  let addrs = Array.map (fun (h : Host.t) -> h.Host.addr) hosts in
  let dirs =
    Array.init nsites (fun i ->
        Dirserver.attach hosts.(i)
          {
            Dirserver.logical_id = i;
            nsites;
            policy;
            resolve = (fun l -> addrs.(l mod nsites));
            peer_port = 2051;
            data_sites = (fun _ -> []);
            smallfile_site = (fun _ -> None);
            coordinator = (fun _ -> None);
            mirror_new_files = false;
            cap_secret = None;
            also_owns = [];
          })
  in
  let client = Host.create net ~name:"client" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  { eng; net; dirs; addrs; rpc; policy }

(* Route a call the way the µproxy would, then send it directly. *)
let site_of rig (call : Nfs.call) =
  let n = Array.length rig.addrs in
  let by_name (dfh : Fh.t) name =
    match rig.policy with
    | Dirserver.Mkdir_switching -> dfh.Fh.attr_site mod n
    | Dirserver.Name_hashing -> Routekey.name_site ~nsites:n dfh name
  in
  match call with
  | Nfs.Getattr fh | Nfs.Setattr (fh, _) | Nfs.Access (fh, _) | Nfs.Readlink fh ->
      fh.Fh.attr_site mod n
  | Nfs.Lookup (d, m) | Nfs.Create (d, m) | Nfs.Mkdir (d, m) | Nfs.Symlink (d, m, _)
  | Nfs.Remove (d, m) | Nfs.Rmdir (d, m) | Nfs.Rename (d, m, _, _) ->
      by_name d m
  | Nfs.Link (_, d, m) -> by_name d m
  | Nfs.Readdir (d, _, _) -> d.Fh.attr_site mod n
  | _ -> 0

let call ?to_site rig (c : Nfs.call) =
  let site = match to_site with Some s -> s | None -> site_of rig c in
  let xid = Rpc.fresh_xid rig.rpc in
  let payload = Codec.encode_call ~xid c in
  let reply = Rpc.call rig.rpc ~dst:rig.addrs.(site) ~dport:2049 payload in
  snd (Codec.decode_reply reply)

let create rig dfh name =
  match call rig (Nfs.Create (dfh, name)) with
  | Ok (Nfs.RCreate (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | _ -> Alcotest.fail "create reply"

let mkdir ?to_site rig dfh name =
  match call ?to_site rig (Nfs.Mkdir (dfh, name)) with
  | Ok (Nfs.RMkdir (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | _ -> Alcotest.fail "mkdir reply"

let lookup rig dfh name =
  match call rig (Nfs.Lookup (dfh, name)) with
  | Ok (Nfs.RLookup (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | _ -> Alcotest.fail "lookup reply"

(* ---- basic name-space semantics ---- *)

let create_lookup_getattr () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh, a = ok_or_fail "create" (create rig Fh.root "file1") in
      check_bool "fresh file size 0" true (a.Nfs.size = 0L);
      check_bool "reg" true (fh.Fh.ftype = Fh.Reg);
      let fh', a' = ok_or_fail "lookup" (lookup rig Fh.root "file1") in
      check_bool "same fh" true (Fh.equal fh fh');
      check_bool "same id" true (a'.Nfs.fileid = a.Nfs.fileid);
      match call rig (Nfs.Getattr fh) with
      | Ok (Nfs.RGetattr ga) -> check_bool "getattr id" true (ga.Nfs.fileid = a.Nfs.fileid)
      | _ -> Alcotest.fail "getattr")

let lookup_noent () =
  let rig = mk_rig () in
  run_on rig.eng (fun () -> expect_err "lookup" Nfs.ERR_NOENT (lookup rig Fh.root "missing"))

let create_exists () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "create" (create rig Fh.root "dup"));
      expect_err "second create" Nfs.ERR_EXIST (create rig Fh.root "dup"))

let parent_mtime_and_count () =
  let rig = mk_rig ~nsites:1 () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "c1" (create rig Fh.root "a"));
      ignore (ok_or_fail "c2" (create rig Fh.root "b"));
      match call rig (Nfs.Getattr Fh.root) with
      | Ok (Nfs.RGetattr a) ->
          (* dir size reflects its two entries *)
          check_bool "dir size grows" true (a.Nfs.size = 48L)
      | _ -> Alcotest.fail "getattr root")

let remove_semantics () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "create" (create rig Fh.root "gone"));
      (match call rig (Nfs.Remove (Fh.root, "gone")) with
      | Ok Nfs.RRemove -> ()
      | _ -> Alcotest.fail "remove");
      expect_err "lookup after remove" Nfs.ERR_NOENT (lookup rig Fh.root "gone");
      match call rig (Nfs.Remove (Fh.root, "gone")) with
      | Error Nfs.ERR_NOENT -> ()
      | _ -> Alcotest.fail "double remove")

let mkdir_rmdir () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let d, _ = ok_or_fail "mkdir" (mkdir rig Fh.root "sub") in
      check_bool "dir type" true (d.Fh.ftype = Fh.Dir);
      ignore (ok_or_fail "create in sub" (create rig d "f"));
      (match call rig (Nfs.Rmdir (Fh.root, "sub")) with
      | Error Nfs.ERR_NOTEMPTY -> ()
      | _ -> Alcotest.fail "rmdir nonempty must fail");
      (match call rig (Nfs.Remove (d, "f")) with Ok Nfs.RRemove -> () | _ -> Alcotest.fail "rm f");
      (match call rig (Nfs.Rmdir (Fh.root, "sub")) with
      | Ok Nfs.RRmdir -> ()
      | _ -> Alcotest.fail "rmdir empty");
      expect_err "dir gone" Nfs.ERR_NOENT (lookup rig Fh.root "sub"))

let rmdir_of_file_fails () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "create" (create rig Fh.root "plain"));
      match call rig (Nfs.Rmdir (Fh.root, "plain")) with
      | Error Nfs.ERR_NOTDIR -> ()
      | _ -> Alcotest.fail "rmdir of file")

let remove_of_dir_fails () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "mkdir" (mkdir rig Fh.root "adir"));
      match call rig (Nfs.Remove (Fh.root, "adir")) with
      | Error Nfs.ERR_ISDIR -> ()
      | _ -> Alcotest.fail "remove of dir")

let symlink_readlink () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      (match call rig (Nfs.Symlink (Fh.root, "ln", "target/path")) with
      | Ok (Nfs.RSymlink (fh, _)) -> (
          check_bool "lnk type" true (fh.Fh.ftype = Fh.Lnk);
          match call rig (Nfs.Readlink fh) with
          | Ok (Nfs.RReadlink (t, _)) -> check_string "target" "target/path" t
          | _ -> Alcotest.fail "readlink")
      | _ -> Alcotest.fail "symlink"))

let link_bumps_nlink () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh, a0 = ok_or_fail "create" (create rig Fh.root "orig") in
      check_int "nlink 1" 1 a0.Nfs.nlink;
      (match call rig (Nfs.Link (fh, Fh.root, "alias")) with
      | Ok (Nfs.RLink a) -> check_int "nlink 2" 2 a.Nfs.nlink
      | _ -> Alcotest.fail "link");
      let fh', _ = ok_or_fail "lookup alias" (lookup rig Fh.root "alias") in
      check_bool "same file" true (Fh.equal fh fh');
      (* removing one name keeps the file *)
      (match call rig (Nfs.Remove (Fh.root, "orig")) with
      | Ok Nfs.RRemove -> ()
      | _ -> Alcotest.fail "remove orig");
      match call rig (Nfs.Getattr fh) with
      | Ok (Nfs.RGetattr a) -> check_int "nlink back to 1" 1 a.Nfs.nlink
      | _ -> Alcotest.fail "file must survive")

let rename_basic () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh, _ = ok_or_fail "create" (create rig Fh.root "old") in
      let d, _ = ok_or_fail "mkdir" (mkdir rig Fh.root "dest") in
      (match call rig (Nfs.Rename (Fh.root, "old", d, "new")) with
      | Ok Nfs.RRename -> ()
      | _ -> Alcotest.fail "rename");
      expect_err "old gone" Nfs.ERR_NOENT (lookup rig Fh.root "old");
      let fh', _ = ok_or_fail "new there" (lookup rig d "new") in
      check_bool "same file" true (Fh.equal fh fh'))

let readdir_lists_entries () =
  let rig = mk_rig ~nsites:1 () in
  run_on rig.eng (fun () ->
      let d, _ = ok_or_fail "mkdir" (mkdir rig Fh.root "list") in
      List.iter (fun n -> ignore (ok_or_fail n (create rig d n))) [ "c"; "a"; "b" ];
      match call rig (Nfs.Readdir (d, 0L, 10)) with
      | Ok (Nfs.RReaddir (entries, _, eof)) ->
          check_bool "eof" true eof;
          check_bool "sorted names" true
            (List.map (fun (e : Nfs.entry) -> e.Nfs.entry_name) entries = [ "a"; "b"; "c" ])
      | _ -> Alcotest.fail "readdir")

let readdir_paging () =
  let rig = mk_rig ~nsites:1 () in
  run_on rig.eng (fun () ->
      let d, _ = ok_or_fail "mkdir" (mkdir rig Fh.root "page") in
      for i = 0 to 9 do
        ignore (ok_or_fail "c" (create rig d (Printf.sprintf "f%02d" i)))
      done;
      let rec pages cookie acc =
        match call rig (Nfs.Readdir (d, cookie, 4)) with
        | Ok (Nfs.RReaddir (entries, next, eof)) ->
            let acc = acc @ List.map (fun (e : Nfs.entry) -> e.Nfs.entry_name) entries in
            if eof then acc else pages next acc
        | _ -> Alcotest.fail "readdir page"
      in
      let all = pages 0L [] in
      check_int "all ten" 10 (List.length all);
      check_bool "no dups" true (List.sort_uniq compare all = all))

(* ---- cross-site behaviour ---- *)

let hashing_spreads_entries () =
  let rig = mk_rig ~nsites:2 ~policy:Dirserver.Name_hashing () in
  run_on rig.eng (fun () ->
      for i = 0 to 19 do
        ignore (ok_or_fail "c" (create rig Fh.root (Printf.sprintf "spread%02d" i)))
      done;
      let e0 = Dirserver.entry_count rig.dirs.(0) in
      let e1 = Dirserver.entry_count rig.dirs.(1) in
      check_int "all entries" 20 (e0 + e1);
      check_bool "both sites used" true (e0 > 0 && e1 > 0);
      (* parent counts crossed sites: root's attr cell lives at site 0 *)
      check_bool "cross-site ops happened" true
        (Dirserver.cross_site_ops rig.dirs.(0) + Dirserver.cross_site_ops rig.dirs.(1) > 0))

let redirected_mkdir_orphan () =
  let rig = mk_rig ~nsites:2 ~policy:Dirserver.Mkdir_switching () in
  run_on rig.eng (fun () ->
      (* emulate the µproxy redirecting a mkdir to the non-parent site *)
      let parent_site = Fh.root.Fh.attr_site in
      let other = (parent_site + 1) mod 2 in
      let d, _ = ok_or_fail "redirected mkdir" (mkdir ~to_site:other rig Fh.root "orphan") in
      check_int "minted at other site" other d.Fh.attr_site;
      (* the name entry must live at the parent's site *)
      let fh', _ = ok_or_fail "lookup orphan" (lookup rig Fh.root "orphan") in
      check_bool "lookup finds it" true (Fh.equal d fh');
      check_bool "entry at parent site" true
        (Dirserver.lookup_local rig.dirs.(parent_site) ~parent:Fh.root "orphan" <> None);
      (* children of the orphan go to the new site *)
      let f, _ = ok_or_fail "create under orphan" (create rig d "child") in
      check_int "child minted at orphan's site" other f.Fh.attr_site)

let misdirected_bounced () =
  let rig = mk_rig ~nsites:2 ~policy:Dirserver.Name_hashing () in
  run_on rig.eng (fun () ->
      ignore (ok_or_fail "create" (create rig Fh.root "here"));
      let right = site_of rig (Nfs.Lookup (Fh.root, "here")) in
      let wrong = (right + 1) mod 2 in
      match call ~to_site:wrong rig (Nfs.Lookup (Fh.root, "here")) with
      | Error Nfs.ERR_MISDIRECTED -> ()
      | _ -> Alcotest.fail "expected SLICE_MISDIRECTED bounce")

let getattr_stale () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let ghost = { Fh.file_id = 999_999L; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L } in
      match call rig (Nfs.Getattr ghost) with
      | Error Nfs.ERR_STALE -> ()
      | _ -> Alcotest.fail "stale handle")

(* ---- recovery ---- *)

let dir_state rig i =
  (Dirserver.entry_count rig.dirs.(i), Dirserver.attr_cell_count rig.dirs.(i))

let crash_recover_preserves_state () =
  let rig = mk_rig ~nsites:2 ~policy:Dirserver.Name_hashing () in
  run_on rig.eng (fun () ->
      let d, _ = ok_or_fail "mkdir" (mkdir rig Fh.root "keep") in
      for i = 0 to 9 do
        ignore (ok_or_fail "c" (create rig d (Printf.sprintf "k%d" i)))
      done;
      ignore (ok_or_fail "symlink" (
        match call rig (Nfs.Symlink (d, "ln", "t")) with
        | Ok (Nfs.RSymlink (fh, a)) -> Ok (fh, a)
        | Error st -> Error st
        | _ -> Alcotest.fail "symlink"));
      let before0 = dir_state rig 0 and before1 = dir_state rig 1 in
      Dirserver.crash rig.dirs.(0);
      Dirserver.crash rig.dirs.(1);
      Dirserver.recover rig.dirs.(0);
      Dirserver.recover rig.dirs.(1);
      Engine.sleep rig.eng 0.5;
      check_bool "site0 state" true (dir_state rig 0 = before0);
      check_bool "site1 state" true (dir_state rig 1 = before1);
      (* and the namespace still works *)
      let fh, _ = ok_or_fail "lookup after recovery" (lookup rig d "k3") in
      check_bool "file intact" true (fh.Fh.ftype = Fh.Reg);
      ignore (ok_or_fail "create after recovery" (create rig d "post-crash")))

let checkpoint_then_recover () =
  let rig = mk_rig ~nsites:1 () in
  run_on rig.eng (fun () ->
      for i = 0 to 5 do
        ignore (ok_or_fail "c" (create rig Fh.root (Printf.sprintf "s%d" i)))
      done;
      Dirserver.checkpoint rig.dirs.(0);
      ignore (ok_or_fail "after ckpt" (create rig Fh.root "late"));
      let before = dir_state rig 0 in
      Dirserver.crash rig.dirs.(0);
      Dirserver.recover rig.dirs.(0);
      check_bool "state from snapshot + tail" true (dir_state rig 0 = before);
      ignore (ok_or_fail "lookup late" (lookup rig Fh.root "late"));
      ignore (ok_or_fail "lookup early" (lookup rig Fh.root "s2")))

let mint_counter_survives_recovery () =
  let rig = mk_rig ~nsites:1 () in
  run_on rig.eng (fun () ->
      let fh1, _ = ok_or_fail "c1" (create rig Fh.root "one") in
      Dirserver.crash rig.dirs.(0);
      Dirserver.recover rig.dirs.(0);
      let fh2, _ = ok_or_fail "c2" (create rig Fh.root "two") in
      check_bool "no fileid reuse" true (fh1.Fh.file_id <> fh2.Fh.file_id))

let suite =
  [
    ("create/lookup/getattr", `Quick, create_lookup_getattr);
    ("lookup ENOENT", `Quick, lookup_noent);
    ("create EEXIST", `Quick, create_exists);
    ("parent size tracks entries", `Quick, parent_mtime_and_count);
    ("remove semantics", `Quick, remove_semantics);
    ("mkdir/rmdir", `Quick, mkdir_rmdir);
    ("rmdir of file fails", `Quick, rmdir_of_file_fails);
    ("remove of dir fails", `Quick, remove_of_dir_fails);
    ("symlink/readlink", `Quick, symlink_readlink);
    ("link bumps nlink", `Quick, link_bumps_nlink);
    ("rename basic", `Quick, rename_basic);
    ("readdir lists entries", `Quick, readdir_lists_entries);
    ("readdir paging", `Quick, readdir_paging);
    ("name hashing spreads entries", `Quick, hashing_spreads_entries);
    ("redirected mkdir orphan", `Quick, redirected_mkdir_orphan);
    ("misdirected request bounced", `Quick, misdirected_bounced);
    ("getattr stale", `Quick, getattr_stale);
    ("crash/recover preserves state", `Quick, crash_recover_preserves_state);
    ("checkpoint then recover", `Quick, checkpoint_then_recover);
    ("mint counter survives recovery", `Quick, mint_counter_survives_recovery);
  ]

let failover_adopt_site () =
  (* Section 2.3: a surviving server assumes a failed server's role,
     recovering its state from the shared journal. *)
  let rig = mk_rig ~nsites:2 ~policy:Dirserver.Name_hashing () in
  run_on rig.eng (fun () ->
      let names = List.init 16 (Printf.sprintf "file%02d") in
      List.iter (fun n -> ignore (ok_or_fail n (create rig Fh.root n))) names;
      (* names whose entries live on site 1 *)
      let on_site1 =
        List.filter (fun n -> site_of rig (Nfs.Lookup (Fh.root, n)) = 1) names
      in
      check_bool "some entries on site 1" true (on_site1 <> []);
      (* server 1 fails; its synced journal survives on shared storage *)
      let journal = Dirserver.log_image rig.dirs.(1) in
      Dirserver.crash rig.dirs.(1);
      (* server 0 adopts logical site 1 from the journal *)
      Dirserver.adopt_site rig.dirs.(0) ~site:1 ~log:journal;
      check_bool "owns both sites" true
        (List.sort compare (Dirserver.owned_sites rig.dirs.(0)) = [ 0; 1 ]);
      (* site-1 entries are now served by server 0 (the routing table
         would be rebound to it) *)
      List.iter
        (fun n ->
          match call ~to_site:0 rig (Nfs.Lookup (Fh.root, n)) with
          | Ok (Nfs.RLookup _) -> ()
          | _ -> Alcotest.failf "lookup %s after failover" n)
        on_site1;
      (* new site-1 names can be created at the survivor *)
      (match call ~to_site:0 rig (Nfs.Create (Fh.root, "post-failover")) with
      | Ok (Nfs.RCreate _) -> ()
      | Error Nfs.ERR_MISDIRECTED -> Alcotest.fail "survivor must accept adopted site"
      | _ -> Alcotest.fail "create after failover");
      (* fold the adopted state into the survivor's own journal, then
         crash/recover the survivor: both sites come back *)
      Dirserver.checkpoint rig.dirs.(0);
      let before = (Dirserver.entry_count rig.dirs.(0), Dirserver.attr_cell_count rig.dirs.(0)) in
      Dirserver.crash rig.dirs.(0);
      Dirserver.recover rig.dirs.(0);
      check_bool "survivor state intact after its own crash" true
        ((Dirserver.entry_count rig.dirs.(0), Dirserver.attr_cell_count rig.dirs.(0)) = before))

let suite = suite @ [ ("failover: adopt failed site", `Quick, failover_adopt_site) ]

let rebalance_logical_sites () =
  (* Section 3.3.1: run more logical sites than physical servers; grow the
     ensemble by moving logical sites to a new server and rebinding the
     (external) routing table. With L logical sites, rebalancing moves
     1/Nth of the data at the granularity of a site. *)
  let nlogical = 8 in
  let eng = Engine.create () in
  let net = Net.create eng () in
  let hosts =
    Array.init 3 (fun i -> Host.create net ~name:(Printf.sprintf "d%d" i) ~disks:1 ())
  in
  let addrs = Array.map (fun (h : Host.t) -> h.Host.addr) hosts in
  (* external table: who owns each logical site now; servers resolve peers
     through it too *)
  let binding = Array.init nlogical (fun l -> l mod 2) in
  let mk_server i primary extras =
    Dirserver.attach hosts.(i)
      {
        Dirserver.logical_id = primary;
        nsites = nlogical;
        policy = Dirserver.Name_hashing;
        resolve = (fun l -> addrs.(binding.(l mod nlogical)));
        peer_port = 2051;
        data_sites = (fun _ -> []);
        smallfile_site = (fun _ -> None);
        coordinator = (fun _ -> None);
        mirror_new_files = false;
        cap_secret = None;
        also_owns = extras;
      }
  in
  (* two physical servers host four logical sites each *)
  let s0 = mk_server 0 0 [ 2; 4; 6 ] in
  let s1 = mk_server 1 1 [ 3; 5; 7 ] in
  let client = Host.create net ~name:"client" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  let call (c : Nfs.call) =
    let site =
      match c with
      | Nfs.Lookup (d, m) | Nfs.Create (d, m) -> Routekey.name_site ~nsites:nlogical d m
      | _ -> 0
    in
    let xid = Rpc.fresh_xid rpc in
    let reply = Rpc.call rpc ~dst:addrs.(binding.(site)) ~dport:2049 (Codec.encode_call ~xid c) in
    snd (Codec.decode_reply reply)
  in
  run_on eng (fun () ->
      let names = List.init 24 (Printf.sprintf "doc%02d") in
      List.iter
        (fun n ->
          match call (Nfs.Create (Fh.root, n)) with
          | Ok (Nfs.RCreate _) -> ()
          | _ -> Alcotest.failf "create %s" n)
        names;
      (* grow: bring up server 2 and move logical sites 6 and 7 to it,
         recovering their state from the donors' journals *)
      let s2 = mk_server 2 6 [] in
      Dirserver.adopt_site s2 ~site:7 ~log:(Dirserver.log_image s1);
      Dirserver.adopt_site s2 ~site:6 ~log:(Dirserver.log_image s0);
      binding.(6) <- 2;
      binding.(7) <- 2;
      (* every name is still reachable under the new binding *)
      List.iter
        (fun n ->
          match call (Nfs.Lookup (Fh.root, n)) with
          | Ok (Nfs.RLookup _) -> ()
          | _ -> Alcotest.failf "lookup %s after rebalance" n)
        names;
      (* and new creates land on the new server for its sites *)
      let moved = ref 0 in
      for i = 0 to 19 do
        let n = Printf.sprintf "new%02d" i in
        let site = Routekey.name_site ~nsites:nlogical Fh.root n in
        match call (Nfs.Create (Fh.root, n)) with
        | Ok (Nfs.RCreate _) -> if binding.(site) = 2 then incr moved
        | _ -> Alcotest.failf "create %s after rebalance" n
      done;
      check_bool "new server takes its share" true (!moved > 0);
      check_bool "new server holds entries" true (Dirserver.entry_count s2 > 0))

let suite = suite @ [ ("rebalance logical sites onto new server", `Quick, rebalance_logical_sites) ]

test/test_baseline.ml: Alcotest Helpers List Slice_baseline Slice_net Slice_nfs Slice_sim Slice_storage Slice_workload String

test/test_proxy.ml: Alcotest Array Char Helpers Int64 List Printf QCheck2 Slice Slice_dir Slice_net Slice_nfs Slice_sim Slice_smallfile Slice_storage Slice_workload String

test/test_xdr.ml: Alcotest Bytes Helpers Int64 List QCheck2 Slice_xdr

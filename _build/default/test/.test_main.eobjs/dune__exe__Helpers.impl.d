test/helpers.ml: Alcotest Format QCheck2 QCheck_alcotest Slice_nfs Slice_sim

test/test_experiments.ml: Alcotest Char Helpers List Printf Slice Slice_experiments Slice_net Slice_nfs Slice_workload String

test/test_net.ml: Alcotest Bytes Helpers Int32 QCheck2 Slice_net Slice_sim String

test/test_disk.ml: Float Helpers Int64 List Option QCheck2 Slice_disk Slice_sim

test/test_storage.ml: Alcotest Array Char Helpers Int64 List Printf Slice_disk Slice_net Slice_nfs Slice_sim Slice_storage String

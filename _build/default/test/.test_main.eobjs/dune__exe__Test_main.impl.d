test/test_main.ml: Alcotest Test_baseline Test_dir Test_disk Test_experiments Test_hash Test_net Test_nfs Test_proxy Test_sim Test_smallfile Test_storage Test_util Test_wal Test_workload Test_xdr

test/test_workload.ml: Alcotest Helpers Int64 List Printf Slice Slice_nfs Slice_sim Slice_util Slice_workload

test/test_smallfile.ml: Alcotest Char Helpers Int64 Slice_net Slice_nfs Slice_sim Slice_smallfile Slice_storage String

test/test_wal.ml: Bytes Helpers Int64 List QCheck2 Slice_disk Slice_sim Slice_wal String

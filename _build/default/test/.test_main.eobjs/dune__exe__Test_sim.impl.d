test/test_sim.ml: Alcotest Array Helpers List Slice_sim

test/test_hash.ml: Array Bytes Char Helpers List Printf QCheck2 Slice_hash String

test/test_nfs.ml: Bytes Float Helpers Int64 List Option QCheck2 Slice_nfs String

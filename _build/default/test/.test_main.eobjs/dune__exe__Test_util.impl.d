test/test_util.ml: Alcotest Array Float Hashtbl Helpers List Option QCheck2 Slice_util String

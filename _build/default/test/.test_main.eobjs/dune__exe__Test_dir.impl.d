test/test_dir.ml: Alcotest Array Helpers List Printf Slice_dir Slice_net Slice_nfs Slice_sim Slice_storage

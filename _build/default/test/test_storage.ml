open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Rpc = Slice_net.Rpc
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Host = Slice_storage.Host
module Obsd = Slice_storage.Obsd
module Coordinator = Slice_storage.Coordinator
module Ctrl = Slice_storage.Ctrl

let reg_fh id =
  { Fh.file_id = Int64.of_int id; gen = 1; ftype = Fh.Reg; mirrored = false; attr_site = 0; cap = 0L }

type rig = {
  eng : Engine.t;
  net : Net.t;
  nodes : Obsd.t array;
  coord : Coordinator.t;
  rpc : Rpc.t;
}

let mk_rig ?(nodes = 2) ?probe_timeout () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let hosts =
    Array.init nodes (fun i ->
        Host.create net ~name:(Printf.sprintf "s%d" i) ~cpu_scale:1.6 ~disks:8 ())
  in
  let obsds = Array.map (fun h -> Obsd.attach h ()) hosts in
  let coord =
    Coordinator.attach hosts.(0) ?probe_timeout
      ~map_sites:(Array.map (fun (h : Host.t) -> h.Host.addr) hosts)
      ()
  in
  let client = Host.create net ~name:"client" () in
  let rpc = Rpc.create net client.Host.addr ~port:1000 in
  { eng; net; nodes = obsds; coord; rpc }

let nfs_call rig ~dst call =
  let xid = Rpc.fresh_xid rig.rpc in
  let payload = Codec.encode_call ~xid call in
  let reply =
    Rpc.call rig.rpc ~dst ~dport:2049 ~extra_size:(Codec.extra_size_of_call call) payload
  in
  snd (Codec.decode_reply reply)

let ctrl_call rig msg =
  let xid = Rpc.fresh_xid rig.rpc in
  let reply =
    Rpc.call rig.rpc ~timeout:2.0 ~dst:(Coordinator.addr rig.coord)
      ~dport:(Coordinator.port rig.coord) (Ctrl.encode_msg ~xid msg)
  in
  snd (Ctrl.decode_reply reply)

(* ---- Obsd ---- *)

let obsd_write_read_roundtrip () =
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      let fh = reg_fh 1 in
      let data = String.init 300 (fun i -> Char.chr (i mod 256)) in
      (match nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data data)) with
      | Ok (Nfs.RWrite (n, _, a)) ->
          check_int "count written" 300 n;
          check_bool "size" true (a.Nfs.size = 300L)
      | _ -> Alcotest.fail "write");
      match nfs_call rig ~dst (Nfs.Read (fh, 0L, 300)) with
      | Ok (Nfs.RRead (Nfs.Data d, eof, _)) ->
          check_string "data back" data d;
          check_bool "eof" true eof
      | _ -> Alcotest.fail "read")

let obsd_synthetic_and_clip () =
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      let fh = reg_fh 2 in
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 100_000)));
      (match nfs_call rig ~dst (Nfs.Read (fh, 90_000L, 32768)) with
      | Ok (Nfs.RRead (Nfs.Synthetic n, eof, _)) ->
          check_int "clipped to size" 10_000 n;
          check_bool "eof at end" true eof
      | _ -> Alcotest.fail "read");
      match nfs_call rig ~dst (Nfs.Read (fh, 200_000L, 32768)) with
      | Ok (Nfs.RRead (d, eof, _)) ->
          check_int "past eof empty" 0 (Nfs.wdata_length d);
          check_bool "eof" true eof
      | _ -> Alcotest.fail "read past eof")

let obsd_offset_windows_are_independent () =
  (* sparse offsets: blocks don't bleed into each other *)
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      let fh = reg_fh 3 in
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 8192L, Nfs.Unstable, Nfs.Data "BBBB")));
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "AAAA")));
      match nfs_call rig ~dst (Nfs.Read (fh, 8192L, 4)) with
      | Ok (Nfs.RRead (Nfs.Data d, _, _)) -> check_string "second block" "BBBB" d
      | _ -> Alcotest.fail "read")

let obsd_remove_and_getattr () =
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      let fh = reg_fh 4 in
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "xyz")));
      check_bool "object exists" true (Obsd.object_size rig.nodes.(0) fh = Some 3L);
      ignore (nfs_call rig ~dst (Nfs.Remove (fh, "")));
      check_bool "object gone" true (Obsd.object_size rig.nodes.(0) fh = None);
      match nfs_call rig ~dst (Nfs.Getattr fh) with
      | Ok (Nfs.RGetattr a) -> check_bool "size 0 after remove" true (a.Nfs.size = 0L)
      | _ -> Alcotest.fail "getattr")

let obsd_commit_stable () =
  let rig = mk_rig () in
  let node = rig.nodes.(0) in
  let dst = Obsd.addr node in
  run_on rig.eng (fun () ->
      let fh = reg_fh 5 in
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 65536)));
      let disk_ops_before = Slice_disk.Disk.ops (Obsd.disk node) in
      (match nfs_call rig ~dst (Nfs.Commit (fh, 0L, 0)) with
      | Ok (Nfs.RCommit _) -> ()
      | _ -> Alcotest.fail "commit");
      check_bool "commit forced disk writes" true
        (Slice_disk.Disk.ops (Obsd.disk node) > disk_ops_before))

let obsd_truncate () =
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      let fh = reg_fh 6 in
      ignore (nfs_call rig ~dst (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 50_000)));
      ignore (nfs_call rig ~dst (Nfs.Setattr (fh, Nfs.sattr_size 10_000L)));
      match nfs_call rig ~dst (Nfs.Getattr fh) with
      | Ok (Nfs.RGetattr a) -> check_bool "truncated" true (a.Nfs.size = 10_000L)
      | _ -> Alcotest.fail "getattr")

let obsd_name_op_rejected () =
  let rig = mk_rig () in
  let dst = Obsd.addr rig.nodes.(0) in
  run_on rig.eng (fun () ->
      match nfs_call rig ~dst (Nfs.Lookup (Fh.root, "x")) with
      | Error Nfs.ERR_NOTDIR -> ()
      | _ -> Alcotest.fail "storage node must reject name ops")

(* ---- Coordinator ---- *)

let coord_orchestrated_remove () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 7 in
      (* put data on both nodes (as stripes would) *)
      Array.iter
        (fun node ->
          ignore
            (nfs_call rig ~dst:(Obsd.addr node) (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "d"))))
        rig.nodes;
      let sites = Array.to_list (Array.map Obsd.addr rig.nodes) in
      (match ctrl_call rig (Ctrl.Remove_file { fh; sites }) with
      | Ctrl.Ack -> ()
      | _ -> Alcotest.fail "remove_file");
      Array.iter
        (fun node -> check_bool "gone everywhere" true (Obsd.object_size node fh = None))
        rig.nodes;
      check_int "no pending intents" 0 (Coordinator.pending_intents rig.coord);
      check_bool "logged" true (Coordinator.intents_logged rig.coord >= 1))

let coord_commit_file () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 8 in
      Array.iter
        (fun node ->
          ignore
            (nfs_call rig ~dst:(Obsd.addr node)
               (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 32768))))
        rig.nodes;
      let sites = Array.to_list (Array.map Obsd.addr rig.nodes) in
      match ctrl_call rig (Ctrl.Commit_file { fh; sites }) with
      | Ctrl.Ack ->
          Array.iter
            (fun node ->
              check_bool "disk touched" true (Slice_disk.Disk.ops (Obsd.disk node) > 0))
            rig.nodes
      | _ -> Alcotest.fail "commit_file")

let coord_intent_complete () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 9 in
      let sites = Array.to_list (Array.map Obsd.addr rig.nodes) in
      (match
         ctrl_call rig (Ctrl.Intent { op_id = 1234L; kind = Ctrl.K_mirror_write; fh; participants = sites })
       with
      | Ctrl.Ack -> ()
      | _ -> Alcotest.fail "intent");
      check_int "one pending" 1 (Coordinator.pending_intents rig.coord);
      (match ctrl_call rig (Ctrl.Complete { op_id = 1234L }) with
      | Ctrl.Ack -> ()
      | _ -> Alcotest.fail "complete");
      check_int "none pending" 0 (Coordinator.pending_intents rig.coord);
      check_int "no redo needed" 0 (Coordinator.redos rig.coord))

let coord_probe_redoes_abandoned_intent () =
  let rig = mk_rig ~probe_timeout:0.2 () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 10 in
      ignore
        (nfs_call rig ~dst:(Obsd.addr rig.nodes.(0))
           (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "zz")));
      let sites = [ Obsd.addr rig.nodes.(0) ] in
      ignore
        (ctrl_call rig (Ctrl.Intent { op_id = 77L; kind = Ctrl.K_remove; fh; participants = sites }));
      (* never send the completion: the probe must fire and redo *)
      Engine.sleep rig.eng 1.0;
      check_int "redo happened" 1 (Coordinator.redos rig.coord);
      check_int "intent resolved" 0 (Coordinator.pending_intents rig.coord);
      check_bool "remove redone" true (Obsd.object_size rig.nodes.(0) fh = None))

let coord_crash_recovery_redoes () =
  let rig = mk_rig ~probe_timeout:60.0 () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 11 in
      ignore
        (nfs_call rig ~dst:(Obsd.addr rig.nodes.(0))
           (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "qq")));
      ignore
        (ctrl_call rig
           (Ctrl.Intent
              { op_id = 88L; kind = Ctrl.K_remove; fh; participants = [ Obsd.addr rig.nodes.(0) ] }));
      (* crash before the completion arrives *)
      Coordinator.crash rig.coord;
      Coordinator.recover rig.coord;
      Engine.sleep rig.eng 1.0;
      check_bool "recovery drove the remove" true (Obsd.object_size rig.nodes.(0) fh = None);
      check_int "redo counted" 1 (Coordinator.redos rig.coord))

let coord_completion_survives_crash () =
  let rig = mk_rig ~probe_timeout:60.0 () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 12 in
      ignore
        (nfs_call rig ~dst:(Obsd.addr rig.nodes.(0))
           (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "keep me")));
      ignore
        (ctrl_call rig
           (Ctrl.Intent
              { op_id = 99L; kind = Ctrl.K_remove; fh; participants = [ Obsd.addr rig.nodes.(0) ] }));
      ignore (ctrl_call rig (Ctrl.Complete { op_id = 99L }));
      (* the async completion record may be unsynced; force a round by
         logging another intent (which syncs) *)
      ignore
        (ctrl_call rig
           (Ctrl.Intent
              { op_id = 100L; kind = Ctrl.K_commit; fh; participants = [ Obsd.addr rig.nodes.(0) ] }));
      ignore (ctrl_call rig (Ctrl.Complete { op_id = 100L }));
      Coordinator.crash rig.coord;
      Coordinator.recover rig.coord;
      Engine.sleep rig.eng 1.0;
      (* op 99 completed: recovery must NOT redo the remove *)
      check_bool "completed op not redone" true
        (Obsd.object_size rig.nodes.(0) fh = Some 7L))

let coord_block_maps () =
  let rig = mk_rig () in
  run_on rig.eng (fun () ->
      let fh = reg_fh 13 in
      match ctrl_call rig (Ctrl.Get_map { fh; first_block = 0; count = 8 }) with
      | Ctrl.Map { first_block = 0; sites } ->
          check_int "eight entries" 8 (Array.length sites);
          let valid = Array.to_list (Array.map Obsd.addr rig.nodes) in
          Array.iter (fun s -> check_bool "valid site" true (List.mem s valid)) sites;
          (* rotation: consecutive blocks alternate over the two nodes *)
          check_bool "rotates" true (sites.(0) <> sites.(1));
          (* stable: a second fetch returns the same map *)
          (match ctrl_call rig (Ctrl.Get_map { fh; first_block = 0; count = 8 }) with
          | Ctrl.Map { sites = sites2; _ } -> check_bool "stable" true (sites = sites2)
          | _ -> Alcotest.fail "refetch");
          check_int "one map entry" 1 (Coordinator.map_entries rig.coord)
      | _ -> Alcotest.fail "get_map")

let suite =
  [
    ("obsd write/read roundtrip", `Quick, obsd_write_read_roundtrip);
    ("obsd synthetic and clip", `Quick, obsd_synthetic_and_clip);
    ("obsd sparse blocks independent", `Quick, obsd_offset_windows_are_independent);
    ("obsd remove and getattr", `Quick, obsd_remove_and_getattr);
    ("obsd commit stable", `Quick, obsd_commit_stable);
    ("obsd truncate", `Quick, obsd_truncate);
    ("obsd rejects name ops", `Quick, obsd_name_op_rejected);
    ("coordinator orchestrated remove", `Quick, coord_orchestrated_remove);
    ("coordinator commit file", `Quick, coord_commit_file);
    ("coordinator intent/complete", `Quick, coord_intent_complete);
    ("coordinator probe redoes abandoned intent", `Quick, coord_probe_redoes_abandoned_intent);
    ("coordinator crash recovery redoes", `Quick, coord_crash_recovery_redoes);
    ("coordinator completion survives crash", `Quick, coord_completion_survives_crash);
    ("coordinator block maps", `Quick, coord_block_maps);
  ]

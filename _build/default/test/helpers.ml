(* Shared scaffolding for the test suites. *)

module Engine = Slice_sim.Engine

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Run [f] as a fiber on a fresh engine, drive to completion, return its
   result. *)
let run_fiber f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng (fun () -> result := Some (f eng));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "fiber did not complete"

(* Same, but with an engine the caller already built. *)
let run_on eng f =
  let result = ref None in
  Engine.spawn eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "fiber did not complete"

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error st -> Alcotest.failf "%s: %s" label (Slice_nfs.Nfs.status_name st)

let expect_err label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" label (Slice_nfs.Nfs.status_name expected)
  | Error st ->
      Alcotest.check
        (Alcotest.testable
           (fun fmt s -> Format.pp_print_string fmt (Slice_nfs.Nfs.status_name s))
           ( = ))
        label expected st

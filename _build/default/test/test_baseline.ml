open Helpers
module Engine = Slice_sim.Engine
module Net = Slice_net.Net
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Host = Slice_storage.Host
module Nfs_server = Slice_baseline.Nfs_server
module Client = Slice_workload.Client

let mk ?(mem_only = false) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let shost = Host.create net ~name:"server" ~disks:(if mem_only then 0 else 8) () in
  let server = Nfs_server.attach shost ~mem_only () in
  let chost = Host.create net ~name:"client" () in
  let cl = Client.create chost ~server:(Nfs_server.addr server) () in
  (eng, server, cl)

let full_lifecycle () =
  let eng, server, cl = mk () in
  run_on eng (fun () ->
      let root = Nfs_server.root server in
      let d, _ = ok_or_fail "mkdir" (Client.mkdir cl root "home") in
      let fh, _ = ok_or_fail "create" (Client.create_file cl d "f.txt") in
      let data = "baseline data" in
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Data data) ()));
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      (match ok_or_fail "read" (Client.read_at cl fh ~off:0L ~count:(String.length data)) with
      | Nfs.Data d', eof ->
          check_string "data" data d';
          check_bool "eof" true eof
      | _ -> Alcotest.fail "synthetic");
      (* rename + link + readdir *)
      ignore (ok_or_fail "rename" (Client.rename cl d "f.txt" d "g.txt"));
      ignore (ok_or_fail "link" (Client.link cl fh ~dir:d "h.txt"));
      let entries = ok_or_fail "readdir" (Client.readdir_all cl d) in
      check_int "two names" 2 (List.length entries);
      ignore (ok_or_fail "remove g" (Client.remove cl d "g.txt"));
      ignore (ok_or_fail "remove h" (Client.remove cl d "h.txt"));
      (match Client.getattr cl fh with
      | Error Nfs.ERR_STALE -> ()
      | _ -> Alcotest.fail "file gone after last unlink");
      ignore (ok_or_fail "rmdir" (Client.rmdir cl root "home"));
      check_int "no errors beyond expected" 1 (Client.errors cl))

let symlink_and_access () =
  let eng, server, cl = mk () in
  run_on eng (fun () ->
      let root = Nfs_server.root server in
      let lfh, _ = ok_or_fail "symlink" (Client.symlink cl root "ln" ~target:"elsewhere") in
      (match Client.call cl (Nfs.Readlink lfh) with
      | Ok (Nfs.RReadlink (t, _)) -> check_string "target" "elsewhere" t
      | _ -> Alcotest.fail "readlink");
      ignore (ok_or_fail "access" (Client.access cl root)))

let mem_only_serves_without_disk () =
  let eng, server, cl = mk ~mem_only:true () in
  run_on eng (fun () ->
      let root = Nfs_server.root server in
      let fh, _ = ok_or_fail "create" (Client.create_file cl root "memfile") in
      ignore (ok_or_fail "write" (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 65536) ()));
      ignore (ok_or_fail "commit" (Client.commit cl fh));
      check_bool "fast (no disk waits)" true (Engine.now eng < 0.01))

let disk_write_path_slower_than_mfs () =
  let t_disk =
    let eng, server, cl = mk () in
    run_on eng (fun () ->
        let fh, _ = ok_or_fail "create" (Client.create_file cl (Nfs_server.root server) "d") in
        ignore (ok_or_fail "w" (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 8192) ()));
        ignore (ok_or_fail "commit" (Client.commit cl fh));
        Engine.now eng)
  in
  let t_mem =
    let eng, server, cl = mk ~mem_only:true () in
    run_on eng (fun () ->
        let fh, _ = ok_or_fail "create" (Client.create_file cl (Nfs_server.root server) "m") in
        ignore (ok_or_fail "w" (Client.write_at cl fh ~off:0L ~data:(Nfs.Synthetic 8192) ()));
        ignore (ok_or_fail "commit" (Client.commit cl fh));
        Engine.now eng)
  in
  check_bool "disk commit slower than MFS" true (t_disk > t_mem)

let suite =
  [
    ("full lifecycle", `Quick, full_lifecycle);
    ("symlink and access", `Quick, symlink_and_access);
    ("mem-only serves without disk", `Quick, mem_only_serves_without_disk);
    ("disk commit slower than MFS", `Quick, disk_write_path_slower_than_mfs);
  ]

open Helpers
module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar
module Specsfs = Slice_workload.Specsfs
module Ensemble = Slice.Ensemble

let mk_dir_ensemble () =
  Ensemble.create
    {
      Ensemble.default_config with
      storage_nodes = 0;
      smallfile_servers = 0;
      dir_servers = 2;
      proxy_params = { Slice.Params.default with threshold = 0 };
    }

let untar_op_count () =
  let ens = mk_dir_ensemble () in
  let host, _ = Ensemble.add_client ens ~name:"c" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  let spec = { Untar.files = 130; dir_every = 13; fanout = 8 } in
  let elapsed =
    run_on (Ensemble.engine ens) (fun () -> Untar.run cl ~root:Ensemble.root ~name:"t" spec)
  in
  check_bool "time passed" true (elapsed > 0.0);
  (* 7 ops per file + 5 per dir; estimate matches the client's op count
     to within the estimate's rounding *)
  let est = Untar.ops_estimate spec in
  check_bool "op estimate accurate" true (abs (Client.ops_completed cl - est) <= 10);
  (* the only "errors" are the intended ENOENT lookup probes before each
     create: one per file and one per directory (incl. the top) *)
  let dirs_made = (spec.Untar.files / spec.Untar.dir_every) + 1 in
  check_int "only ENOENT probes" (spec.Untar.files + dirs_made) (Client.errors cl)

let untar_scaled_spec () =
  let s = Untar.scaled_spec 0.1 in
  check_int "files scaled" 3343 s.Untar.files;
  check_int "ratio kept" Untar.default_spec.Untar.dir_every s.Untar.dir_every;
  Alcotest.check_raises "zero scale rejected" (Invalid_argument "Untar.scaled_spec") (fun () ->
      ignore (Untar.scaled_spec 0.0))

let untar_names_isolated () =
  (* two processes untar side by side into distinct subtrees *)
  let ens = mk_dir_ensemble () in
  let eng = Ensemble.engine ens in
  let host, _ = Ensemble.add_client ens ~name:"c" in
  let spec = { Untar.files = 40; dir_every = 13; fanout = 8 } in
  let ok = ref 0 in
  Engine.spawn eng (fun () ->
      Slice_sim.Fiber.join_all eng
        (List.init 2 (fun p () ->
             let cl =
               Client.create host ~server:(Ensemble.virtual_addr ens) ~port:(1000 + p) ()
             in
             ignore (Untar.run cl ~root:Ensemble.root ~name:(Printf.sprintf "p%d" p) spec);
             incr ok)));
  Engine.run eng;
  check_int "both finished" 2 !ok

let client_sequential_io_stats () =
  let ens =
    Ensemble.create { Ensemble.default_config with storage_nodes = 2; smallfile_servers = 0;
                      proxy_params = { Slice.Params.default with threshold = 0 } }
  in
  let host, _ = Ensemble.add_client ens ~name:"c" in
  let cl = Client.create host ~server:(Ensemble.virtual_addr ens) () in
  run_on (Ensemble.engine ens) (fun () ->
      let fh = { Slice_nfs.Fh.root with Slice_nfs.Fh.file_id = 42L; ftype = Slice_nfs.Fh.Reg } in
      Client.sequential_write cl fh ~bytes:(Int64.of_int (32768 * 4));
      Client.sequential_read cl fh ~bytes:(Int64.of_int (32768 * 4)));
  (* 4 writes + commit + 4 reads *)
  check_bool "ops counted" true (Client.ops_completed cl >= 9);
  check_bool "latency recorded" true
    (Slice_util.Stats.count (Client.op_latency cl) = Client.ops_completed cl)

let specsfs_sanity () =
  let ens = Ensemble.create { Ensemble.default_config with storage_nodes = 2 } in
  let eng = Ensemble.engine ens in
  let host, _ = Ensemble.add_client ens ~name:"c" in
  let clients = [| Client.create host ~server:(Ensemble.virtual_addr ens) () |] in
  let r =
    Specsfs.run eng ~clients ~root:Ensemble.root
      {
        Specsfs.default_config with
        offered_iops = 150.0;
        processes = 2;
        duration = 2.0;
        warmup = 0.5;
        bytes_per_iops = 20_000.0;
      }
  in
  check_bool "some files" true (r.Specsfs.fileset_files >= 20);
  check_bool "bytes accounted" true (Int64.compare r.Specsfs.fileset_bytes 0L > 0);
  check_bool "delivered near offered" true
    (r.Specsfs.delivered > 100.0 && r.Specsfs.delivered < 200.0);
  check_bool "latency sane" true (r.Specsfs.avg_latency_ms > 0.05 && r.Specsfs.avg_latency_ms < 50.0);
  check_int "no errors" 0 r.Specsfs.errors

let specsfs_saturation_degrades () =
  (* offered far beyond capacity: delivered plateaus below offered *)
  let ens = Ensemble.create { Ensemble.default_config with storage_nodes = 1; disks_per_node = 2 } in
  let eng = Ensemble.engine ens in
  let host, _ = Ensemble.add_client ens ~name:"c" in
  let clients = [| Client.create host ~server:(Ensemble.virtual_addr ens) () |] in
  let r =
    Specsfs.run eng ~clients ~root:Ensemble.root
      {
        Specsfs.default_config with
        offered_iops = 4000.0;
        processes = 4;
        duration = 1.5;
        warmup = 0.5;
        bytes_per_iops = 30_000.0;
      }
  in
  check_bool "saturated below offered" true (r.Specsfs.delivered < 3600.0)

let suite =
  [
    ("untar op count", `Quick, untar_op_count);
    ("untar scaled spec", `Quick, untar_scaled_spec);
    ("untar parallel processes", `Quick, untar_names_isolated);
    ("client sequential io stats", `Quick, client_sequential_io_stats);
    ("specsfs sanity", `Slow, specsfs_sanity);
    ("specsfs saturation degrades", `Slow, specsfs_saturation_degrades);
  ]

open Helpers
module Fh = Slice_nfs.Fh
module Nfs = Slice_nfs.Nfs
module Codec = Slice_nfs.Codec
module Routekey = Slice_nfs.Routekey

let gen_ftype = QCheck2.Gen.oneofl [ Fh.Reg; Fh.Dir; Fh.Lnk ]

let gen_fh =
  QCheck2.Gen.(
    map
      (fun (fid, gen, ftype, (mirrored, site)) ->
        {
          Fh.file_id = Int64.of_int (abs fid);
          gen = gen land 0xFFFF;
          ftype;
          mirrored;
          attr_site = site;
          cap = Int64.of_int (fid lxor gen);
        })
      (tup4 int int gen_ftype (pair bool (int_range 0 255))))

let gen_name = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 30))

(* ---- file handles ---- *)

let fh_roundtrip =
  qtest "fh encode/decode roundtrip" gen_fh (fun fh ->
      match Fh.decode (Fh.encode fh) with Some fh' -> fh' = fh | None -> false)

let fh_wire_length () =
  check_int "wire length" Fh.wire_length (String.length (Fh.encode Fh.root))

let fh_bad_magic () =
  check_bool "garbage rejected" true (Fh.decode (String.make Fh.wire_length 'z') = None);
  check_bool "short rejected" true (Fh.decode "abc" = None)

let fh_root () =
  check_bool "root is dir" true (Fh.root.Fh.ftype = Fh.Dir);
  check_bool "root id 1" true (Fh.root.Fh.file_id = 1L)

(* ---- calls ---- *)

let sample_attr =
  {
    Nfs.ftype = Fh.Reg;
    mode = 0o644;
    nlink = 1;
    uid = 10;
    gid = 20;
    size = 123456L;
    used = 131072L;
    fileid = 42L;
    atime = 100.5;
    mtime = 200.25;
    ctime = 300.125;
  }

let gen_call =
  let open QCheck2.Gen in
  let fh = gen_fh in
  oneof
    [
      return Nfs.Null;
      map (fun f -> Nfs.Getattr f) fh;
      map2 (fun f n -> Nfs.Lookup (f, n)) fh gen_name;
      map2 (fun f n -> Nfs.Create (f, n)) fh gen_name;
      map2 (fun f n -> Nfs.Mkdir (f, n)) fh gen_name;
      map2 (fun f n -> Nfs.Remove (f, n)) fh gen_name;
      map2 (fun f n -> Nfs.Rmdir (f, n)) fh gen_name;
      map2 (fun f m -> Nfs.Access (f, m land 0x3F)) fh int;
      map (fun f -> Nfs.Readlink f) fh;
      map (fun f -> Nfs.Fsstat f) fh;
      map3
        (fun f off count -> Nfs.Read (f, Int64.of_int (abs off), count land 0xFFFFF))
        fh int int;
      map3
        (fun f off data -> Nfs.Write (f, Int64.of_int (abs off), Nfs.Unstable, Nfs.Data data))
        fh int (string_size (int_range 0 64));
      map3
        (fun f off n -> Nfs.Write (f, Int64.of_int (abs off), Nfs.File_sync, Nfs.Synthetic (n land 0xFFFFF)))
        fh int int;
      map3 (fun f n t -> Nfs.Symlink (f, n, t)) fh gen_name gen_name;
      map3 (fun f1 n1 (f2, n2) -> Nfs.Rename (f1, n1, f2, n2)) fh gen_name (pair fh gen_name);
      map3 (fun f d n -> Nfs.Link (f, d, n)) fh fh gen_name;
      map3
        (fun f c n -> Nfs.Readdir (f, Int64.of_int (abs c), n land 0xFF))
        fh int int;
      map3
        (fun f off n -> Nfs.Commit (f, Int64.of_int (abs off), n land 0xFFFFF))
        fh int int;
      map2
        (fun f sz -> Nfs.Setattr (f, Nfs.sattr_size (Int64.of_int (abs sz))))
        fh int;
    ]

let call_roundtrip =
  qtest ~count:500 "call encode/decode roundtrip" QCheck2.Gen.(pair small_int gen_call)
    (fun (xid, call) ->
      let xid = xid land 0xFFFF in
      let xid', call' = Codec.decode_call (Codec.encode_call ~xid call) in
      xid' = xid && call' = call)

let peek_matches_decode =
  qtest ~count:500 "peek agrees with full decode" gen_call (fun call ->
      let buf = Codec.encode_call ~xid:77 call in
      match Codec.peek_call buf with
      | None -> false
      | Some p ->
          p.Codec.xid = 77
          && p.Codec.proc = Nfs.proc_of_call call
          && (match call with
             | Nfs.Getattr fh | Nfs.Lookup (fh, _) | Nfs.Read (fh, _, _)
             | Nfs.Write (fh, _, _, _) | Nfs.Create (fh, _) | Nfs.Mkdir (fh, _) ->
                 p.Codec.fh = Some fh
             | Nfs.Null -> p.Codec.fh = None
             | _ -> true)
          &&
          match call with
          | Nfs.Read (_, off, count) | Nfs.Commit (_, off, count) ->
              p.Codec.offset = Some off && p.Codec.count = Some count
          | Nfs.Write (_, off, stable, data) ->
              p.Codec.offset = Some off
              && p.Codec.count = Some (Nfs.wdata_length data)
              && p.Codec.write_stable = Some stable
          | Nfs.Rename (_, n1, fh2, _) -> p.Codec.name = Some n1 && p.Codec.fh2 = Some fh2
          | Nfs.Lookup (_, n) -> p.Codec.name = Some n
          | _ -> true)

let peek_offset_field =
  qtest "peek's offset field location is exact" QCheck2.Gen.(pair gen_fh int)
    (fun (fh, off) ->
      let off = Int64.of_int (abs off) in
      let buf = Codec.encode_call ~xid:9 (Nfs.Read (fh, off, 4096)) in
      match Codec.peek_call buf with
      | Some { Codec.offset_field_off = Some pos; _ } -> Bytes.get_int64_be buf pos = off
      | _ -> false)

let peek_rejects_garbage () =
  check_bool "garbage" true (Codec.peek_call (Bytes.make 40 'x') = None);
  check_bool "empty" true (Codec.peek_call Bytes.empty = None);
  let reply = Codec.encode_reply ~xid:3 (Ok Nfs.RNull) in
  check_bool "reply is not a call" true (Codec.peek_call reply = None)

(* ---- replies ---- *)

let gen_reply =
  let open QCheck2.Gen in
  let a = return sample_attr in
  oneof
    [
      return Nfs.RNull;
      map (fun a -> Nfs.RGetattr a) a;
      map (fun a -> Nfs.RSetattr a) a;
      map2 (fun fh a -> Nfs.RLookup (fh, a)) gen_fh a;
      map2 (fun fh a -> Nfs.RCreate (fh, a)) gen_fh a;
      map2 (fun fh a -> Nfs.RMkdir (fh, a)) gen_fh a;
      map2 (fun m a -> Nfs.RAccess (m land 0x3F, a)) int a;
      map2 (fun t a -> Nfs.RReadlink (t, a)) gen_name a;
      map3 (fun d eof a -> Nfs.RRead (Nfs.Data d, eof, a)) (string_size (int_range 0 64)) bool a;
      map3 (fun n eof a -> Nfs.RRead (Nfs.Synthetic (n land 0xFFFFF), eof, a)) int bool a;
      map2 (fun n a -> Nfs.RWrite (n land 0xFFFFF, Nfs.Unstable, a)) int a;
      return Nfs.RRemove;
      return Nfs.RRmdir;
      return Nfs.RRename;
      map (fun a -> Nfs.RLink a) a;
      map (fun a -> Nfs.RCommit a) a;
      map2
        (fun names cookie ->
          let entries =
            List.mapi
              (fun i n ->
                { Nfs.entry_id = Int64.of_int i; entry_name = n; entry_cookie = Int64.of_int (i + 1) })
              names
          in
          Nfs.RReaddir (entries, Int64.of_int (abs cookie), true))
        (small_list gen_name) int;
    ]

let attr_close a b =
  a.Nfs.ftype = b.Nfs.ftype && a.Nfs.mode = b.Nfs.mode && a.Nfs.nlink = b.Nfs.nlink
  && a.Nfs.size = b.Nfs.size && a.Nfs.fileid = b.Nfs.fileid
  && Float.abs (a.Nfs.mtime -. b.Nfs.mtime) < 1e-6

let reply_equal r1 r2 =
  match (r1, r2) with
  | Ok a, Ok b -> (
      match (a, b) with
      | Nfs.RGetattr x, Nfs.RGetattr y | Nfs.RSetattr x, Nfs.RSetattr y -> attr_close x y
      | Nfs.RLookup (f, x), Nfs.RLookup (g, y) | Nfs.RCreate (f, x), Nfs.RCreate (g, y) ->
          f = g && attr_close x y
      | Nfs.RRead (d1, e1, x), Nfs.RRead (d2, e2, y) -> d1 = d2 && e1 = e2 && attr_close x y
      | x, y -> (
          (* structural comparison is fine for attr-free replies *)
          match (Nfs.reply_attr x, Nfs.reply_attr y) with
          | None, None -> x = y
          | Some ax, Some ay -> attr_close ax ay
          | _ -> false))
  | Error a, Error b -> a = b
  | _ -> false

let reply_roundtrip =
  qtest ~count:500 "reply encode/decode roundtrip" gen_reply (fun r ->
      let xid', r' = Codec.decode_reply (Codec.encode_reply ~xid:5 (Ok r)) in
      xid' = 5 && reply_equal (Ok r) r')

let error_roundtrip () =
  List.iter
    (fun st ->
      let _, r = Codec.decode_reply (Codec.encode_reply ~xid:1 (Error st)) in
      check_bool (Nfs.status_name st) true (r = Error st))
    [
      Nfs.ERR_PERM; Nfs.ERR_NOENT; Nfs.ERR_IO; Nfs.ERR_EXIST; Nfs.ERR_NOTDIR; Nfs.ERR_ISDIR;
      Nfs.ERR_NOSPC; Nfs.ERR_NOTEMPTY; Nfs.ERR_STALE; Nfs.ERR_BADHANDLE; Nfs.ERR_JUKEBOX;
      Nfs.ERR_MISDIRECTED;
    ]

let attr_offset_fixed =
  qtest "attr block at fixed offset when present" gen_reply (fun r ->
      let buf = Codec.encode_reply ~xid:1 (Ok r) in
      match (Nfs.reply_attr r, Codec.reply_attr_offset buf) with
      | Some a, Some off -> attr_close a (Codec.decode_attr_at buf off)
      | None, None -> true
      | _ -> false)

let attr_patch_points () =
  let buf = Codec.encode_reply ~xid:1 (Ok (Nfs.RGetattr sample_attr)) in
  let off = Option.get (Codec.reply_attr_offset buf) in
  (* overwrite the size field in place and re-read *)
  Bytes.blit_string (Codec.u64_be 999L) 0 buf (off + Codec.attr_size_field_off) 8;
  Bytes.blit_string (Codec.time_be 777.5) 0 buf (off + Codec.attr_mtime_field_off) 8;
  let a = Codec.decode_attr_at buf off in
  check_bool "size patched" true (a.Nfs.size = 999L);
  check_bool "mtime patched" true (Float.abs (a.Nfs.mtime -. 777.5) < 1e-6)

let reply_fh_after_attr () =
  let fh = { Fh.root with Fh.file_id = 55L; ftype = Fh.Reg } in
  let buf = Codec.encode_reply ~xid:1 (Ok (Nfs.RLookup (fh, sample_attr))) in
  check_bool "lookup fh found" true (Codec.reply_fh_after_attr buf = Some fh);
  let buf2 = Codec.encode_reply ~xid:1 (Ok (Nfs.RGetattr sample_attr)) in
  check_bool "getattr has none" true (Codec.reply_fh_after_attr buf2 = None)

let extra_size_synthetic () =
  let fh = Fh.root in
  check_int "write synthetic" 4096
    (Codec.extra_size_of_call (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Synthetic 4096)));
  check_int "write real" 0
    (Codec.extra_size_of_call (Nfs.Write (fh, 0L, Nfs.Unstable, Nfs.Data "abcd")));
  check_int "read reply synthetic" 8192
    (Codec.extra_size_of_response (Ok (Nfs.RRead (Nfs.Synthetic 8192, true, sample_attr))))

let apply_sattr_semantics () =
  let a = Nfs.default_attr ~ftype:Fh.Reg ~fileid:9L ~now:10.0 in
  let a' = Nfs.apply_sattr a (Nfs.sattr_size 100L) ~now:20.0 in
  check_bool "size set" true (a'.Nfs.size = 100L);
  check_bool "mtime bumped by size change" true (a'.Nfs.mtime = 20.0);
  check_bool "ctime bumped" true (a'.Nfs.ctime = 20.0);
  let a'' = Nfs.apply_sattr a' { Nfs.sattr_empty with set_mode = Some 0o600 } ~now:30.0 in
  check_int "mode set" 0o600 a''.Nfs.mode;
  check_bool "size unchanged" true (a''.Nfs.size = 100L)

(* ---- routing keys ---- *)

let name_site_range =
  qtest "name_site in range" QCheck2.Gen.(pair gen_fh gen_name) (fun (fh, n) ->
      let s = Routekey.name_site ~nsites:7 fh n in
      s >= 0 && s < 7)

let stripe_local_offset () =
  let su = 32768 in
  (* chunk k maps to local chunk k/n *)
  check_bool "chunk 0" true (Routekey.local_offset ~nsites:4 ~stripe_unit:su 0L = 0L);
  check_bool "chunk 4 -> local chunk 1" true
    (Routekey.local_offset ~nsites:4 ~stripe_unit:su (Int64.of_int (4 * su)) = Int64.of_int su);
  check_bool "offset within chunk preserved" true
    (Routekey.local_offset ~nsites:4 ~stripe_unit:su (Int64.of_int ((4 * su) + 123))
    = Int64.of_int (su + 123))

let stripe_rotation =
  qtest "stripe sites rotate by chunk" QCheck2.Gen.(pair gen_fh (int_range 0 100))
    (fun (fh, chunk) ->
      let su = 32768 in
      let s1 = Routekey.stripe_site ~nsites:8 ~stripe_unit:su fh (Int64.of_int (chunk * su)) in
      let s2 =
        Routekey.stripe_site ~nsites:8 ~stripe_unit:su fh (Int64.of_int ((chunk + 1) * su))
      in
      s2 = (s1 + 1) mod 8)

let mirror_sites_distinct =
  qtest "mirror replicas distinct" gen_fh (fun fh ->
      let r0, r1 = Routekey.mirror_sites ~nsites:8 fh in
      r0 <> r1 && r0 >= 0 && r0 < 8 && r1 >= 0 && r1 < 8)

let suite =
  [
    fh_roundtrip;
    ("fh wire length", `Quick, fh_wire_length);
    ("fh bad magic", `Quick, fh_bad_magic);
    ("fh root", `Quick, fh_root);
    call_roundtrip;
    peek_matches_decode;
    peek_offset_field;
    ("peek rejects garbage", `Quick, peek_rejects_garbage);
    reply_roundtrip;
    ("error statuses roundtrip", `Quick, error_roundtrip);
    attr_offset_fixed;
    ("attr patch points", `Quick, attr_patch_points);
    ("reply fh after attr", `Quick, reply_fh_after_attr);
    ("extra size synthetic", `Quick, extra_size_synthetic);
    ("apply_sattr semantics", `Quick, apply_sattr_semantics);
    name_site_range;
    ("stripe local offset", `Quick, stripe_local_offset);
    stripe_rotation;
    mirror_sites_distinct;
  ]

(* ---- robustness: decoders never crash on arbitrary bytes ---- *)

let decode_garbage_is_contained =
  qtest ~count:500 "decode of fuzz never escapes Malformed"
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun s ->
      let buf = Bytes.of_string s in
      let contained f = match f () with _ -> true | exception Codec.Malformed _ -> true in
      contained (fun () -> ignore (Codec.peek_call buf))
      && contained (fun () -> ignore (Codec.decode_call buf))
      && contained (fun () -> ignore (Codec.decode_reply buf))
      && contained (fun () -> ignore (Codec.reply_attr_offset buf))
      && contained (fun () -> ignore (Codec.reply_fh_after_attr buf)))

let truncated_real_call_is_contained =
  qtest ~count:200 "truncated real calls are contained"
    QCheck2.Gen.(int_range 0 60)
    (fun keep ->
      let full = Codec.encode_call ~xid:5 (Nfs.Lookup (Fh.root, "victim")) in
      let cut = Bytes.sub full 0 (min keep (Bytes.length full)) in
      (match Codec.decode_call cut with
      | _ -> true
      | exception Codec.Malformed _ -> true)
      && match Codec.peek_call cut with Some _ | None -> true)

let suite =
  suite @ [ decode_garbage_is_contained; truncated_real_call_is_contained ]

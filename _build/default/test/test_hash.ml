open Helpers
module Md5 = Slice_hash.Md5
module Fnv = Slice_hash.Fnv
module Crc32 = Slice_hash.Crc32

(* RFC 1321 appendix test suite. *)
let md5_rfc_vectors () =
  let cases =
    [
      ("", "d41d8cd98f00b204e9800998ecf8427e");
      ("a", "0cc175b9c0f1b6a831c399e269772661");
      ("abc", "900150983cd24fb0d6963f7d28e17f72");
      ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
      ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
      ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f" );
      ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a" );
    ]
  in
  List.iter (fun (msg, hex) -> check_string msg hex (Md5.hex msg)) cases

let md5_block_boundaries () =
  (* lengths around the 55/56/64-byte padding boundaries *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      check_int (Printf.sprintf "digest len at %d" n) 16 (String.length (Md5.digest s)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128; 1000 ]

let md5_subrange () =
  let buf = Bytes.of_string "xxabcyy" in
  check_string "subrange = digest of slice" (Md5.hex "abc")
    (Md5.to_hex (Md5.digest_bytes buf ~pos:2 ~len:3))

let md5_deterministic =
  qtest "md5 deterministic & 16 bytes" QCheck2.Gen.string (fun s ->
      let d1 = Md5.digest s and d2 = Md5.digest s in
      d1 = d2 && String.length d1 = 16)

let md5_bucket_range =
  qtest "bucket in range" QCheck2.Gen.(pair string (int_range 1 64)) (fun (s, n) ->
      let b = Md5.bucket s n in
      b >= 0 && b < n)

let md5_balance () =
  (* the paper chose MD5 for balanced request distribution: hashing many
     distinct keys over 8 buckets should be near-uniform *)
  let n = 8 and keys = 16_000 in
  let counts = Array.make n 0 in
  for i = 1 to keys do
    let b = Md5.bucket (Printf.sprintf "fh-%d/name-%d" i (i * 17)) n in
    counts.(b) <- counts.(b) + 1
  done;
  let expect = keys / n in
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d near uniform (%d)" i c) true
        (abs (c - expect) < expect / 4))
    counts

let fnv_known () =
  (* standard FNV-1a 64 test values *)
  check_bool "empty" true (Fnv.hash "" = 0xcbf29ce484222325L);
  check_bool "a" true (Fnv.hash "a" = 0xaf63dc4c8601ec8cL)

let fnv_bucket_range =
  qtest "fnv bucket in range" QCheck2.Gen.(pair string (int_range 1 64)) (fun (s, n) ->
      let b = Fnv.bucket s n in
      b >= 0 && b < n)

let crc32_vectors () =
  (* standard zlib crc32 check values *)
  check_bool "123456789" true (Crc32.string "123456789" = 0xCBF43926l);
  check_bool "empty" true (Crc32.string "" = 0l);
  check_bool "abc" true (Crc32.string "abc" = 0x352441C2l)

let crc32_detects_flip =
  qtest "crc32 detects single-byte flips"
    QCheck2.Gen.(string_size (int_range 1 200))
    (fun s ->
      let b = Bytes.of_string s in
      let c1 = Crc32.bytes b ~pos:0 ~len:(Bytes.length b) in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      let c2 = Crc32.bytes b ~pos:0 ~len:(Bytes.length b) in
      c1 <> c2)

let suite =
  [
    ("md5 RFC vectors", `Quick, md5_rfc_vectors);
    ("md5 block boundaries", `Quick, md5_block_boundaries);
    ("md5 subrange", `Quick, md5_subrange);
    md5_deterministic;
    md5_bucket_range;
    ("md5 balance over sites", `Quick, md5_balance);
    ("fnv known values", `Quick, fnv_known);
    fnv_bucket_range;
    ("crc32 vectors", `Quick, crc32_vectors);
    crc32_detects_flip;
  ]

type addr = int

type t = {
  mutable src : addr;
  mutable dst : addr;
  mutable sport : int;
  mutable dport : int;
  payload : bytes;
  mutable extra_size : int;
  mutable cksum : int;
}

let header_bytes = 74 (* 14 Ethernet + 20 IP + 8 UDP + 32 RPC record marks etc. *)

let wire_size t = header_bytes + Bytes.length t.payload + t.extra_size

(* make is completed by Cksum.seal, but Cksum depends on this module; we
   inline the checksum here to keep [make] self-contained. *)

let ones_add a b =
  let s = a + b in
  (s land 0xFFFF) + (s lsr 16)

let sum_payload payload =
  let n = Bytes.length payload in
  let acc = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    acc := ones_add !acc ((Char.code (Bytes.get payload !i) lsl 8) lor Char.code (Bytes.get payload (!i + 1)));
    i := !i + 2
  done;
  if !i < n then acc := ones_add !acc (Char.code (Bytes.get payload !i) lsl 8);
  !acc

let pseudo_sum ~src ~dst ~sport ~dport ~len =
  let acc = ref 0 in
  let add v = acc := ones_add !acc (v land 0xFFFF) in
  add (src lsr 16);
  add src;
  add (dst lsr 16);
  add dst;
  add sport;
  add dport;
  add len;
  !acc

let compute_cksum ~src ~dst ~sport ~dport payload =
  let s =
    ones_add (sum_payload payload)
      (pseudo_sum ~src ~dst ~sport ~dport ~len:(Bytes.length payload))
  in
  lnot s land 0xFFFF

let make ~src ~dst ~sport ~dport ?(extra_size = 0) payload =
  {
    src;
    dst;
    sport;
    dport;
    payload;
    extra_size;
    cksum = compute_cksum ~src ~dst ~sport ~dport payload;
  }

let copy t =
  {
    src = t.src;
    dst = t.dst;
    sport = t.sport;
    dport = t.dport;
    payload = Bytes.copy t.payload;
    extra_size = t.extra_size;
    cksum = t.cksum;
  }

module Engine = Slice_sim.Engine
module Resource = Slice_sim.Resource

type params = {
  bandwidth : float;
  wire_latency : float;
  switch_latency : float;
  drop_prob : float;
}

let default_params =
  { bandwidth = 125_000_000.0; wire_latency = 10e-6; switch_latency = 8e-6; drop_prob = 0.0 }

type filter = Packet.t -> Packet.t option

type node = {
  name : string;
  tx : Resource.t;
  rx : Resource.t;
  mutable egress : filter list; (* in application order *)
  mutable ingress : filter list;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
}

type t = {
  eng : Engine.t;
  p : params;
  prng : Slice_util.Prng.t;
  mutable nodes : node array;
  mutable n : int;
  mutable sent : int;
  mutable bytes : int;
  mutable dropped : int;
}

let create eng ?(params = default_params) ?(seed = 1) () =
  { eng; p = params; prng = Slice_util.Prng.create seed; nodes = [||]; n = 0; sent = 0; bytes = 0; dropped = 0 }

let engine t = t.eng
let params t = t.p

let add_node t ~name =
  let node =
    {
      name;
      tx = Resource.create t.eng ~name:(name ^ ".tx") ();
      rx = Resource.create t.eng ~name:(name ^ ".rx") ();
      egress = [];
      ingress = [];
      handlers = Hashtbl.create 4;
    }
  in
  if t.n = Array.length t.nodes then begin
    let cap = if t.n = 0 then 8 else t.n * 2 in
    let nodes = Array.make cap node in
    Array.blit t.nodes 0 nodes 0 t.n;
    t.nodes <- nodes
  end;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let get t a =
  if a < 0 || a >= t.n then invalid_arg "Net: unknown address";
  t.nodes.(a)

let node_name t a = (get t a).name
let node_count t = t.n
let listen t a ~port handler = Hashtbl.replace (get t a).handlers port handler
let unlisten t a ~port = Hashtbl.remove (get t a).handlers port
let add_egress_filter t a f = (get t a).egress <- (get t a).egress @ [ f ]
let add_ingress_filter t a f = (get t a).ingress <- (get t a).ingress @ [ f ]

let rec apply_filters filters pkt =
  match filters with
  | [] -> Some pkt
  | f :: rest -> ( match f pkt with None -> None | Some pkt -> apply_filters rest pkt)

let deliver t (pkt : Packet.t) =
  let dst = get t pkt.dst in
  match apply_filters dst.ingress pkt with
  | None -> ()
  | Some pkt -> (
      match Hashtbl.find_opt dst.handlers pkt.dport with
      | Some h -> h pkt
      | None -> t.dropped <- t.dropped + 1)

let transmit t (pkt : Packet.t) =
  if pkt.dst < 0 || pkt.dst >= t.n then t.dropped <- t.dropped + 1
  else begin
    t.sent <- t.sent + 1;
    let size = Packet.wire_size pkt in
    t.bytes <- t.bytes + size;
    let src = get t pkt.src in
    let ser = float_of_int size /. t.p.bandwidth in
    let tx_done = Resource.reserve src.tx ser in
    if t.p.drop_prob > 0.0 && Slice_util.Prng.float t.prng 1.0 < t.p.drop_prob then
      t.dropped <- t.dropped + 1
    else begin
      let arrival = tx_done +. t.p.wire_latency +. t.p.switch_latency in
      Engine.schedule_at t.eng arrival (fun () ->
          let dst = get t pkt.dst in
          let rx_done = Resource.reserve dst.rx ser in
          Engine.schedule_at t.eng rx_done (fun () -> deliver t pkt))
    end
  end

let send t (pkt : Packet.t) =
  let src = get t pkt.src in
  match apply_filters src.egress pkt with
  | None -> ()
  | Some pkt -> transmit t pkt

let inject t pkt = transmit t pkt

let dispatch t (pkt : Packet.t) =
  let dst = get t pkt.dst in
  match Hashtbl.find_opt dst.handlers pkt.dport with
  | Some h -> h pkt
  | None -> t.dropped <- t.dropped + 1
let packets_sent t = t.sent
let bytes_sent t = t.bytes
let packets_dropped t = t.dropped
let nic_busy_time t a = Resource.busy_time (get t a).tx

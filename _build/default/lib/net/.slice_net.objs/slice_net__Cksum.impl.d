lib/net/cksum.ml: Bytes Char Packet String

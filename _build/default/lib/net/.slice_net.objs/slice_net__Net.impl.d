lib/net/net.ml: Array Hashtbl Packet Slice_sim Slice_util

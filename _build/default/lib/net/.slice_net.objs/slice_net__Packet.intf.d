lib/net/packet.mli:

lib/net/packet.ml: Bytes Char

lib/net/rpc.ml: Bytes Hashtbl Int32 Net Packet Slice_sim

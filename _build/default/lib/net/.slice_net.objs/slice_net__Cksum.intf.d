lib/net/cksum.mli: Packet

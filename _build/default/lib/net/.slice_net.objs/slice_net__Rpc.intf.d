lib/net/rpc.mli: Net Packet

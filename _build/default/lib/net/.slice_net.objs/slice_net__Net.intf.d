lib/net/net.mli: Packet Slice_sim

(** Network packets as seen by the µproxy: addressing fields it may
    rewrite, an encoded RPC payload it may patch, and a transport checksum
    it must keep consistent.

    [extra_size] models bulk data that is logically carried but not
    materialized in [payload] (multi-gigabyte sequential I/O would not fit
    in memory); it counts toward wire size and transfer time but not
    toward checksum coverage. *)

type addr = int

type t = {
  mutable src : addr;
  mutable dst : addr;
  mutable sport : int;
  mutable dport : int;
  payload : bytes;
  mutable extra_size : int;
  mutable cksum : int; (* 16-bit ones-complement checksum *)
}

val make :
  src:addr -> dst:addr -> sport:int -> dport:int -> ?extra_size:int -> bytes -> t
(** Builds a packet and seals its checksum. *)

val header_bytes : int
(** Modeled per-packet header overhead (Ethernet+IP+UDP), included in
    {!wire_size}. *)

val wire_size : t -> int
(** Total modeled bytes on the wire: headers + payload + extra. *)

val copy : t -> t
(** Deep copy (fresh payload buffer); used for retransmission and for
    mirrored-write duplication so rewrites don't alias. *)

(**/**)

val compute_cksum :
  src:addr -> dst:addr -> sport:int -> dport:int -> bytes -> int
(** Internal: full checksum computation, re-exported through {!Cksum}. *)

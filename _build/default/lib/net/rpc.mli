(** Datagram RPC endpoint with end-to-end retransmission.

    This is the client side of the NFS/RPC/UDP stack the paper relies on
    for correctness: the µproxy "is free to discard its state and/or
    pending packets without compromising correctness — end-to-end
    protocols retransmit packets as necessary to recover from drops in the
    µproxy". Replies are matched to calls by XID (first big-endian word of
    the payload). *)

exception Timeout
(** Raised when all retransmissions are exhausted. *)

type t

val create : Net.t -> Packet.addr -> port:int -> t
(** [create net addr ~port] claims [addr:port] for reply dispatch. *)

val addr : t -> Packet.addr

val fresh_xid : t -> int
(** Allocate the next XID (callers that build their own payloads must
    place it in the first word). *)

val call :
  t ->
  ?timeout:float ->
  ?retries:int ->
  dst:Packet.addr ->
  dport:int ->
  ?extra_size:int ->
  bytes ->
  bytes
(** [call t ~dst ~dport payload] sends the payload (whose first word must
    be a fresh XID from {!fresh_xid}) and parks the calling fiber until a
    matching reply arrives; retransmits every [timeout] seconds (default
    0.1), at most [retries] times (default 8), then raises {!Timeout}.
    Returns the reply payload. *)

val retransmissions : t -> int
val calls_completed : t -> int

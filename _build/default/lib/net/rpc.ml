module Engine = Slice_sim.Engine

exception Timeout

type outcome = Reply of bytes | Timed_out

(* XIDs are drawn from a single process-wide counter so no two endpoints
   in a simulation ever collide, which lets an interposed filter key its
   soft state on the XID alone. *)
let xid_counter = ref 0

type t = {
  net : Net.t;
  eng : Engine.t;
  addr : Packet.addr;
  port : int;
  pending : (int, outcome -> unit) Hashtbl.t;
  mutable retransmits : int;
  mutable completed : int;
}

let on_packet t (pkt : Packet.t) =
  if Bytes.length pkt.payload >= 4 then begin
    let xid = Int32.to_int (Bytes.get_int32_be pkt.payload 0) land 0xFFFFFFFF in
    match Hashtbl.find_opt t.pending xid with
    | None -> () (* duplicate reply after a retransmission: drop *)
    | Some wake ->
        Hashtbl.remove t.pending xid;
        t.completed <- t.completed + 1;
        wake (Reply pkt.payload)
  end

let create net addr ~port =
  let t =
    {
      net;
      eng = Net.engine net;
      addr;
      port;
      pending = Hashtbl.create 64;
      retransmits = 0;
      completed = 0;
    }
  in
  Net.listen net addr ~port (on_packet t);
  t

let addr t = t.addr

let fresh_xid _t =
  incr xid_counter;
  !xid_counter land 0xFFFFFFFF

let call t ?(timeout = 0.1) ?(retries = 8) ~dst ~dport ?(extra_size = 0) payload =
  let xid = Int32.to_int (Bytes.get_int32_be payload 0) land 0xFFFFFFFF in
  let outcome =
    Engine.suspend (fun wake ->
        Hashtbl.replace t.pending xid wake;
        let rec attempt n =
          if Hashtbl.mem t.pending xid then begin
            if n > 0 then t.retransmits <- t.retransmits + 1;
            (* Fresh packet per attempt: an interposed filter may have
               rewritten the previous copy in place. *)
            let pkt =
              Packet.make ~src:t.addr ~dst ~sport:t.port ~dport ~extra_size
                (Bytes.copy payload)
            in
            Net.send t.net pkt;
            Engine.schedule t.eng timeout (fun () ->
                if Hashtbl.mem t.pending xid then
                  if n < retries then attempt (n + 1)
                  else begin
                    Hashtbl.remove t.pending xid;
                    wake Timed_out
                  end)
          end
        in
        attempt 0)
  in
  match outcome with Reply b -> b | Timed_out -> raise Timeout

let retransmissions t = t.retransmits
let calls_completed t = t.completed

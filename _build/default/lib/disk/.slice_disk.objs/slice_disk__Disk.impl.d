lib/disk/disk.ml: Float Slice_sim

lib/disk/ffs.mli:

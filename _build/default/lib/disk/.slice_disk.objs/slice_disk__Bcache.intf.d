lib/disk/bcache.mli: Disk Slice_sim

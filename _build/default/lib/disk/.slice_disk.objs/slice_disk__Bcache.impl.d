lib/disk/bcache.ml: Disk Hashtbl List Slice_sim Slice_util

lib/disk/ffs.ml: Int64 List

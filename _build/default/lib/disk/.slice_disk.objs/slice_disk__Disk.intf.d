lib/disk/disk.mli: Slice_sim

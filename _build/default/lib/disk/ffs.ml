(* Free list as a sorted association list of (offset, length). Partitions
   hold few live fragments in our workloads, so the O(n) list walk is not a
   bottleneck; correctness (coalescing, overlap detection) is what the
   tests lean on. *)

type t = { size : int64; mutable free : (int64 * int64) list; mutable free_total : int64 }

let create ~size =
  if Int64.compare size 0L <= 0 then invalid_arg "Ffs.create";
  { size; free = [ (0L, size) ]; free_total = size }

let alloc t ?(strategy = `First_fit) len =
  if len <= 0 then invalid_arg "Ffs.alloc";
  let len64 = Int64.of_int len in
  let candidate =
    match strategy with
    | `First_fit ->
        List.find_opt (fun (_, l) -> Int64.compare l len64 >= 0) t.free
    | `Best_fit ->
        List.fold_left
          (fun best (o, l) ->
            if Int64.compare l len64 < 0 then best
            else
              match best with
              | Some (_, bl) when Int64.compare bl l <= 0 -> best
              | _ -> Some (o, l))
          None t.free
  in
  match candidate with
  | None -> None
  | Some (off, flen) ->
      t.free <-
        List.concat_map
          (fun (o, l) ->
            if o = off then
              if Int64.compare l len64 = 0 then []
              else [ (Int64.add o len64, Int64.sub l len64) ]
            else [ (o, l) ])
          t.free;
      ignore flen;
      t.free_total <- Int64.sub t.free_total len64;
      Some off

let free t ~off ~len =
  if len <= 0 then invalid_arg "Ffs.free: bad length";
  let len64 = Int64.of_int len in
  let fin = Int64.add off len64 in
  if Int64.compare off 0L < 0 || Int64.compare fin t.size > 0 then
    invalid_arg "Ffs.free: out of range";
  List.iter
    (fun (o, l) ->
      let oe = Int64.add o l in
      if Int64.compare off oe < 0 && Int64.compare o fin < 0 then
        invalid_arg "Ffs.free: double free / overlap")
    t.free;
  (* Insert sorted, then coalesce neighbours. *)
  let rec insert = function
    | [] -> [ (off, len64) ]
    | (o, l) :: rest when Int64.compare off o < 0 -> (off, len64) :: (o, l) :: rest
    | e :: rest -> e :: insert rest
  in
  let rec coalesce = function
    | (o1, l1) :: (o2, l2) :: rest when Int64.add o1 l1 = o2 ->
        coalesce ((o1, Int64.add l1 l2) :: rest)
    | e :: rest -> e :: coalesce rest
    | [] -> []
  in
  t.free <- coalesce (insert t.free);
  t.free_total <- Int64.add t.free_total len64

let free_bytes t = t.free_total
let used_bytes t = Int64.sub t.size t.free_total
let size t = t.size
let fragment_count t = List.length t.free

let largest_free t =
  List.fold_left (fun acc (_, l) -> if Int64.compare l acc > 0 then l else acc) 0L t.free

let check_invariants t =
  let rec ok total = function
    | [] -> Some total
    | (o, l) :: rest ->
        if Int64.compare o 0L < 0 || Int64.compare l 0L <= 0 then None
        else if Int64.compare (Int64.add o l) t.size > 0 then None
        else begin
          match rest with
          | (o2, _) :: _ when Int64.compare (Int64.add o l) o2 >= 0 -> None
          | _ -> ok (Int64.add total l) rest
        end
  in
  match ok 0L t.free with Some total -> total = t.free_total | None -> false

(** Server buffer cache over 8 KB blocks keyed by (object, block number),
    with the two FFS behaviours the paper's storage nodes lean on:

    - {b sequential prefetch}: a miss on a (near-)sequential stream waits
      only for the demand block and streams up to 256 KB beyond it
      asynchronously. Strides up to 2 count as sequential, so a client
      alternating between mirrors still triggers contiguous prefetch —
      which is exactly how mirrored reads come to waste prefetched data on
      the storage nodes (Table 2).
    - {b write clustering / write-behind}: dirty blocks are written back
      lazily; contiguous runs flush as single transfers. [commit] waits
      for the object's dirty data to be stable (NFS V3 commit semantics).

    The cache is parameterized by a {!backend}, because Slice file
    managers are {e dataless}: a storage node's cache sits on its local
    disk array, while a small-file server's cache sits on zones striped
    over the {e network} storage array. Byte counts are model weights;
    block payloads live with the owning service. *)

val block_size : int
(** 8192. *)

type backend = {
  demand_read : obj:int64 -> block:int -> count:int -> sequential:bool -> unit;
      (** Fiber: fetch blocks, parking the caller until they arrive. *)
  readahead : obj:int64 -> block:int -> count:int -> unit;
      (** Issue an asynchronous prefetch; must not park. *)
  write_back : obj:int64 -> block:int -> count:int -> done_:(unit -> unit) -> unit;
      (** Issue an asynchronous write; call [done_] when stable. Must not
          park the caller. *)
  sync : unit -> unit;
      (** Fiber: device-level stabilization barrier (commit tail). *)
}

val disk_backend : Slice_sim.Engine.t -> Disk.t -> backend
(** Local disk-array backend (storage nodes). *)

type t

val create : Slice_sim.Engine.t -> backend:backend -> capacity:int -> name:string -> t
(** [capacity] in bytes. *)

val read : t -> obj:int64 -> block:int -> unit
(** Fiber: ensure the block is resident. *)

val write : t -> obj:int64 -> block:int -> unit
(** Fiber-context: dirty the block (write-behind; no storage wait). *)

val commit : t -> obj:int64 -> unit
(** Fiber: flush the object's dirty blocks with clustering and wait until
    all outstanding write-backs (of any object) are stable. *)

val commit_all : t -> unit
val invalidate_object : t -> int64 -> unit

val drop_clean : t -> unit
(** Invalidate everything without write-back — a cold mount. Call only
    when nothing is dirty (after [commit_all]). *)

val hits : t -> int
val misses : t -> int
val prefetched_blocks : t -> int
val resident_bytes : t -> int

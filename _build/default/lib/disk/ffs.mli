(** FFS-flavored extent allocator for a storage partition.

    Tracks free space as a coalescing free list and serves first-fit /
    best-fit extent allocations. The object stores and small-file zones
    allocate their backing space through this, giving the layout the
    sequential-allocation behaviour the paper's create-heavy workloads
    depend on ("the small-file allocation policy lays out data on backing
    objects sequentially, batching newly created files into a single
    stream"). Offsets and lengths are in bytes. *)

type t

val create : size:int64 -> t

val alloc : t -> ?strategy:[ `First_fit | `Best_fit ] -> int -> int64 option
(** [alloc t len] reserves [len] bytes, returning the extent offset, or
    [None] when no free extent is large enough. Default [`First_fit],
    which degenerates to sequential layout on a fresh partition. *)

val free : t -> off:int64 -> len:int -> unit
(** Release an extent; adjacent free extents coalesce.
    @raise Invalid_argument on double-free or out-of-range extents. *)

val free_bytes : t -> int64
val used_bytes : t -> int64
val size : t -> int64

val fragment_count : t -> int
(** Number of free extents — the fragmentation measure. *)

val largest_free : t -> int64

val check_invariants : t -> bool
(** Free extents are sorted, non-overlapping, non-adjacent, in range —
    the property tested by the qcheck suite. *)

let name_site ~nsites parent name =
  Slice_hash.Md5.bucket (Fh.key parent ^ "\x00" ^ name) nsites

let file_site ~nsites fh = Slice_hash.Md5.bucket (Fh.key fh) nsites

let chunk_of_offset ~stripe_unit off =
  Int64.to_int (Int64.div off (Int64.of_int stripe_unit))

let stripe_site ~nsites ~stripe_unit fh off =
  let primary = file_site ~nsites fh in
  (primary + chunk_of_offset ~stripe_unit off) mod nsites

let local_offset ~nsites ~stripe_unit off =
  let su = Int64.of_int stripe_unit in
  let chunk = Int64.div off su in
  let within = Int64.rem off su in
  Int64.add (Int64.mul (Int64.div chunk (Int64.of_int nsites)) su) within

let mirror_sites ~nsites fh =
  let r0 = file_site ~nsites fh in
  if nsites < 2 then (r0, r0)
  else (r0, (r0 + 1 + ((nsites - 1) / 2)) mod nsites)

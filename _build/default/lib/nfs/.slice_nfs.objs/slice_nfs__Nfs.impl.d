lib/nfs/nfs.ml: Fh String

lib/nfs/routekey.mli: Fh

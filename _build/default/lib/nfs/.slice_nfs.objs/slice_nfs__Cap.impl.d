lib/nfs/cap.ml: Bytes Fh Int32 Int64 Slice_hash

lib/nfs/fh.ml: Bytes Char Format Int Int32 Int64 String

lib/nfs/nfs.mli: Fh

lib/nfs/routekey.ml: Fh Int64 Slice_hash

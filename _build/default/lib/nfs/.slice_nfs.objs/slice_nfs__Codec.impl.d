lib/nfs/codec.ml: Bytes Fh Float Int32 List Nfs Printf Slice_xdr

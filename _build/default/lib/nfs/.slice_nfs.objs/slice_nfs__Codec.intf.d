lib/nfs/codec.mli: Fh Nfs

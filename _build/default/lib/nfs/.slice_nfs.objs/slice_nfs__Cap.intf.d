lib/nfs/cap.mli: Fh

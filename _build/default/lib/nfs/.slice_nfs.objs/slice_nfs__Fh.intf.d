lib/nfs/fh.mli: Format

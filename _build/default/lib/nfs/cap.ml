(* HMAC-style envelope over the handle's identity fields. The tag itself
   is excluded from the MAC input (a handle is its own carrier). *)

let identity_bytes (fh : Fh.t) =
  let b = Bytes.create 14 in
  Bytes.set_int64_be b 0 fh.Fh.file_id;
  Bytes.set_int32_be b 8 (Int32.of_int fh.Fh.gen);
  Bytes.set b 12 (match fh.Fh.ftype with Fh.Reg -> 'r' | Fh.Dir -> 'd' | Fh.Lnk -> 'l');
  Bytes.set b 13 (if fh.Fh.mirrored then 'm' else '-');
  Bytes.unsafe_to_string b

let mint ~secret fh =
  let inner = Slice_hash.Md5.digest (secret ^ "\x36" ^ identity_bytes fh) in
  Slice_hash.Md5.fold64 (secret ^ "\x5c" ^ inner)

let seal ~secret fh = { fh with Fh.cap = mint ~secret fh }
let verify ~secret (fh : Fh.t) = Int64.equal fh.Fh.cap (mint ~secret fh)

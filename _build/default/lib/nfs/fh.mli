(** NFS file handles.

    Slice directory servers "place keys in each newly minted file handle,
    allowing them to locate any resident cell if presented with an fhandle"
    — so besides the fileID and generation number, our handles embed the
    logical directory-server site holding the file's attribute cell and
    per-file policy bits (mirroring) that the µproxy's I/O routing policies
    consult. Handles are opaque 32-byte strings on the wire. *)

type ftype = Reg | Dir | Lnk

type t = {
  file_id : int64;  (** volume-unique file identifier *)
  gen : int;  (** generation number guarding against reuse *)
  ftype : ftype;
  mirrored : bool;  (** per-file mirrored-striping policy flag *)
  attr_site : int;  (** logical directory-server site of the attribute cell *)
  cap : int64;
      (** capability tag sealed in by the minting directory server when
          secure objects are enabled (see {!Cap}); 0 when unused. Ignored
          by {!equal}/{!compare}. *)
}

val root : t
(** The volume root directory (fileID 1, minted at logical site 0). *)

val wire_length : int
(** 32 bytes. *)

val encode : t -> string
val decode : string -> t option
(** [None] when the magic or length is wrong (a stale/garbage handle). *)

val key : t -> string
(** Canonical byte string for hashing a handle (routing fingerprints). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Cryptographic capabilities on storage object identifiers.

    "A key advantage of OBSDs and NASDs is that they allow for
    cryptographic protection of storage object identifiers if the network
    is insecure. This protection allows the µproxy to reside outside of
    the server ensemble's trust boundary. In this case, the damage from a
    compromised µproxy is limited to the files and directories that its
    client(s) had permission to access." (Section 2.2)

    Directory servers share a secret with the storage nodes and seal a
    capability tag into every file handle they mint; storage nodes verify
    the tag before serving I/O. The µproxy only ever forwards handles it
    was given, so compromising it does not mint new authority. The MAC is
    an MD5-based construction — keyed hashing in the spirit of the era's
    NASD prototypes; swap in a modern MAC for production use. *)

val mint : secret:string -> Fh.t -> int64
(** Capability tag for this handle's identity (independent of any tag
    already present in it). *)

val seal : secret:string -> Fh.t -> Fh.t
(** The same handle with its capability tag filled in. *)

val verify : secret:string -> Fh.t -> bool
(** Does the handle carry the tag [secret] would mint for it? *)

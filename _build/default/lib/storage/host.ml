type t = {
  net : Slice_net.Net.t;
  eng : Slice_sim.Engine.t;
  addr : Slice_net.Packet.addr;
  cpu : Slice_sim.Resource.t;
  cpu_scale : float;
  disk : Slice_disk.Disk.t option;
}

let create net ~name ?(cpu_scale = 1.0) ?(disks = 0) ?disk_params () =
  let eng = Slice_net.Net.engine net in
  let addr = Slice_net.Net.add_node net ~name in
  let disk =
    if disks > 0 then
      Some (Slice_disk.Disk.create eng ?params:disk_params ~arms:disks ~name ())
    else None
  in
  {
    net;
    eng;
    addr;
    cpu = Slice_sim.Resource.create eng ~name:(name ^ ".cpu") ();
    cpu_scale;
    disk;
  }

let cpu t cost = Slice_sim.Resource.use t.cpu (cost /. t.cpu_scale)
let cpu_async t cost = Slice_sim.Resource.reserve t.cpu (cost /. t.cpu_scale)

let disk_exn t =
  match t.disk with
  | Some d -> d
  | None -> invalid_arg "Host.disk_exn: diskless host"

let name t = Slice_net.Net.node_name t.net t.addr

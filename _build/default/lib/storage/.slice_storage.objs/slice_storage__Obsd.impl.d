lib/storage/obsd.ml: Bytes Hashtbl Host Int64 Nfs_endpoint Option Slice_disk Slice_hash Slice_nfs String

lib/storage/ctrl.ml: Array List Slice_nfs Slice_xdr

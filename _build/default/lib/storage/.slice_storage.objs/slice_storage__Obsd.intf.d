lib/storage/obsd.mli: Host Slice_disk Slice_net Slice_nfs

lib/storage/nfs_endpoint.ml: Bytes Hashtbl Host Slice_net Slice_nfs Slice_sim Slice_util

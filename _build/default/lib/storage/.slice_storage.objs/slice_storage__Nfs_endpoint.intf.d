lib/storage/nfs_endpoint.mli: Host Slice_net Slice_nfs

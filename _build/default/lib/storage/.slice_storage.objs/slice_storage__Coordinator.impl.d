lib/storage/coordinator.ml: Array Bytes Ctrl Hashtbl Host Int64 List Nfs_endpoint Slice_net Slice_nfs Slice_sim Slice_wal

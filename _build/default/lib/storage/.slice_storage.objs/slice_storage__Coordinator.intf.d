lib/storage/coordinator.mli: Host Slice_net

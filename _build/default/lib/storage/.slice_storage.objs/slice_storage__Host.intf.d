lib/storage/host.mli: Slice_disk Slice_net Slice_sim

lib/storage/host.ml: Slice_disk Slice_net Slice_sim

lib/storage/ctrl.mli: Slice_nfs

module Enc = Slice_xdr.Xdr.Enc
module Dec = Slice_xdr.Xdr.Dec
module Fh = Slice_nfs.Fh

exception Malformed

type kind = K_remove | K_commit | K_mirror_write | K_truncate

let kind_to_int = function K_remove -> 1 | K_commit -> 2 | K_mirror_write -> 3 | K_truncate -> 4

let kind_of_int = function
  | 1 -> Some K_remove
  | 2 -> Some K_commit
  | 3 -> Some K_mirror_write
  | 4 -> Some K_truncate
  | _ -> None

type msg =
  | Intent of { op_id : int64; kind : kind; fh : Fh.t; participants : int list }
  | Complete of { op_id : int64 }
  | Remove_file of { fh : Fh.t; sites : int list }
  | Commit_file of { fh : Fh.t; sites : int list }
  | Get_map of { fh : Fh.t; first_block : int; count : int }

type reply = Ack | Nack | Map of { first_block : int; sites : int array }

let enc_fh e fh = Enc.opaque e (Fh.encode fh)

let dec_fh d =
  match Fh.decode (Dec.opaque d) with Some fh -> fh | None -> raise Malformed

let enc_sites e sites =
  Enc.u32 e (List.length sites);
  List.iter (Enc.u32 e) sites

let dec_sites d =
  let n = Dec.u32 d in
  List.init n (fun _ -> Dec.u32 d)

let encode_msg ~xid msg =
  let e = Enc.create () in
  Enc.u32 e xid;
  (match msg with
  | Intent { op_id; kind; fh; participants } ->
      Enc.u32 e 1;
      Enc.u64 e op_id;
      Enc.u32 e (kind_to_int kind);
      enc_fh e fh;
      enc_sites e participants
  | Complete { op_id } ->
      Enc.u32 e 2;
      Enc.u64 e op_id
  | Remove_file { fh; sites } ->
      Enc.u32 e 3;
      enc_fh e fh;
      enc_sites e sites
  | Commit_file { fh; sites } ->
      Enc.u32 e 4;
      enc_fh e fh;
      enc_sites e sites
  | Get_map { fh; first_block; count } ->
      Enc.u32 e 5;
      enc_fh e fh;
      Enc.u32 e first_block;
      Enc.u32 e count);
  Enc.to_bytes e

let decode_msg buf =
  let d = Dec.of_bytes buf in
  try
    let xid = Dec.u32 d in
    let msg =
      match Dec.u32 d with
      | 1 ->
          let op_id = Dec.u64 d in
          let kind = match kind_of_int (Dec.u32 d) with Some k -> k | None -> raise Malformed in
          let fh = dec_fh d in
          Intent { op_id; kind; fh; participants = dec_sites d }
      | 2 -> Complete { op_id = Dec.u64 d }
      | 3 ->
          let fh = dec_fh d in
          Remove_file { fh; sites = dec_sites d }
      | 4 ->
          let fh = dec_fh d in
          Commit_file { fh; sites = dec_sites d }
      | 5 ->
          let fh = dec_fh d in
          let first_block = Dec.u32 d in
          Get_map { fh; first_block; count = Dec.u32 d }
      | _ -> raise Malformed
    in
    (xid, msg)
  with Slice_xdr.Xdr.Truncated -> raise Malformed

let encode_reply ~xid reply =
  let e = Enc.create () in
  Enc.u32 e xid;
  (match reply with
  | Ack -> Enc.u32 e 1
  | Nack -> Enc.u32 e 2
  | Map { first_block; sites } ->
      Enc.u32 e 3;
      Enc.u32 e first_block;
      Enc.u32 e (Array.length sites);
      Array.iter (Enc.u32 e) sites);
  Enc.to_bytes e

let decode_reply buf =
  let d = Dec.of_bytes buf in
  try
    let xid = Dec.u32 d in
    let reply =
      match Dec.u32 d with
      | 1 -> Ack
      | 2 -> Nack
      | 3 ->
          let first_block = Dec.u32 d in
          let n = Dec.u32 d in
          Map { first_block; sites = Array.init n (fun _ -> Dec.u32 d) }
      | _ -> raise Malformed
    in
    (xid, reply)
  with Slice_xdr.Xdr.Truncated -> raise Malformed

(** A physical machine in the ensemble: a network attachment point plus a
    CPU and optionally a disk array. Services (storage node, directory
    server, small-file server, coordinator, client stack) attach to a host
    and share its CPU — co-locating multiple server functions on one node,
    which the paper explicitly allows ("a single server node could combine
    the functions of multiple server classes"). *)

type t = {
  net : Slice_net.Net.t;
  eng : Slice_sim.Engine.t;
  addr : Slice_net.Packet.addr;
  cpu : Slice_sim.Resource.t;
  cpu_scale : float;  (** relative speed; costs divide by this *)
  disk : Slice_disk.Disk.t option;
}

val create :
  Slice_net.Net.t ->
  name:string ->
  ?cpu_scale:float ->
  ?disks:int ->
  ?disk_params:Slice_disk.Disk.params ->
  unit ->
  t
(** [cpu_scale] defaults to 1.0 (a 450 MHz PC client/manager in the
    paper's testbed); storage nodes (733 MHz Xeon) use ~1.6. [disks]
    creates a disk array with that many arms (0 = diskless). *)

val cpu : t -> float -> unit
(** Fiber: consume [cost /. cpu_scale] seconds of this host's CPU. *)

val cpu_async : t -> float -> float
(** Book CPU without parking; returns completion time. *)

val disk_exn : t -> Slice_disk.Disk.t
val name : t -> string

(** Control-plane messages of the block service coordinator: intention
    begin/complete, orchestrated multi-site remove and commit, and
    block-map fragment fetch (Sections 2.2, 3.1 and 3.3.2 of the paper).
    Encoded over XDR with an RPC-compatible XID first word so the generic
    {!Slice_net.Rpc} endpoint carries them. *)

type kind = K_remove | K_commit | K_mirror_write | K_truncate

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

type msg =
  | Intent of { op_id : int64; kind : kind; fh : Slice_nfs.Fh.t; participants : int list }
      (** Declare a multi-site operation before acting; the coordinator
          logs it and will drive redo if no completion arrives. *)
  | Complete of { op_id : int64 }
  | Remove_file of { fh : Slice_nfs.Fh.t; sites : int list }
      (** Coordinator-orchestrated remove of all backing objects. *)
  | Commit_file of { fh : Slice_nfs.Fh.t; sites : int list }
      (** NFS V3 write commitment across the file's storage sites. *)
  | Get_map of { fh : Slice_nfs.Fh.t; first_block : int; count : int }
      (** Fetch a fragment of the per-file block map. *)

type reply =
  | Ack
  | Nack
  | Map of { first_block : int; sites : int array }

val encode_msg : xid:int -> msg -> bytes
val decode_msg : bytes -> int * msg
val encode_reply : xid:int -> reply -> bytes
val decode_reply : bytes -> int * reply

exception Malformed

lib/wal/wal.mli: Slice_disk Slice_sim

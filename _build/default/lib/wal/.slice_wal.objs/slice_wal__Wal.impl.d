lib/wal/wal.ml: Buffer Bytes Int32 Int64 List Slice_disk Slice_hash Slice_sim String

lib/sim/fiber.ml: Engine List Queue

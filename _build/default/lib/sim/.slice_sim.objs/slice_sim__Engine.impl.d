lib/sim/engine.ml: Effect Slice_util

lib/sim/engine.mli:

(** Small combinators over {!Engine} fibers. *)

val join_all : Engine.t -> (unit -> unit) list -> unit
(** [join_all eng fns] runs each [fn] in its own fiber, parking the caller
    until every one has finished. Exceptions in children abort the run. *)

val timeout : Engine.t -> float -> (unit -> 'a) -> 'a option
(** [timeout eng limit f] runs [f] in a child fiber; returns [Some v] if
    it finishes within [limit] simulated seconds, else [None] (the child
    keeps running to completion but its result is discarded). *)

val parallel_window : Engine.t -> window:int -> int -> (int -> unit) -> unit
(** [parallel_window eng ~window n f] runs [f 0 .. f (n-1)], each in its
    own fiber, with at most [window] outstanding at once (issue order is
    index order). Parks the caller until all complete. Models bounded
    client pipelines: NFS read-ahead depth, write-behind windows. *)

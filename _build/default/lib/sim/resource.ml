type t = {
  eng : Engine.t;
  name : string;
  free_at : float array; (* completion time of the work booked on each server *)
  mutable busy : float;
  mutable waited : float;
  mutable served : int;
}

let create eng ?(capacity = 1) ~name () =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  { eng; name; free_at = Array.make capacity 0.0; busy = 0.0; waited = 0.0; served = 0 }

(* Pick the server that frees earliest; FCFS because bookings happen in
   event order and each booking extends exactly one server's schedule. *)
let book t service =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  let now = Engine.now t.eng in
  let start = if t.free_at.(!best) > now then t.free_at.(!best) else now in
  let finish = start +. service in
  t.free_at.(!best) <- finish;
  t.busy <- t.busy +. service;
  t.waited <- t.waited +. (start -. now);
  t.served <- t.served + 1;
  finish

let reserve t service = if service <= 0.0 then Engine.now t.eng else book t service

let use t service =
  if service > 0.0 then begin
    let finish = book t service in
    Engine.sleep_until t.eng finish
  end

let busy_time t = t.busy

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0 else t.busy /. (elapsed *. float_of_int (Array.length t.free_at))

let queue_delay_total t = t.waited
let served t = t.served
let name t = t.name

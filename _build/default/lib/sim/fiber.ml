let join_all eng fns =
  match fns with
  | [] -> ()
  | _ ->
      let remaining = ref (List.length fns) in
      Engine.suspend (fun wake ->
          List.iter
            (fun fn ->
              Engine.spawn eng (fun () ->
                  fn ();
                  decr remaining;
                  if !remaining = 0 then wake ()))
            fns)

let timeout eng limit f =
  Engine.suspend (fun wake ->
      Engine.spawn eng (fun () ->
          let v = f () in
          wake (Some v));
      Engine.schedule eng limit (fun () -> wake None))

let parallel_window eng ~window n f =
  if window <= 0 then invalid_arg "Fiber.parallel_window";
  let inflight = ref 0 in
  let started = ref 0 in
  let finished = ref 0 in
  let done_waker = ref None in
  let slot_wakers = Queue.create () in
  let pump () =
    while !inflight < window && !started < n do
      let i = !started in
      incr started;
      incr inflight;
      Engine.spawn eng (fun () ->
          f i;
          decr inflight;
          incr finished;
          (match Queue.take_opt slot_wakers with Some w -> w () | None -> ());
          if !finished = n then match !done_waker with Some w -> w () | None -> ())
    done
  in
  pump ();
  while !started < n do
    Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) slot_wakers);
    pump ()
  done;
  if !finished < n then Engine.suspend (fun wake -> done_waker := Some (fun () -> wake ()))

(** The paper's name-intensive "untar" benchmark: repeatedly unpack a
    directory tree of zero-length files mimicking the FreeBSD source
    distribution. Each file create generates the seven NFS operations the
    paper counts — lookup(miss), access, create, getattr, lookup(hit),
    setattr, setattr — and directories are created with a similar
    five-operation sequence, so ~36 000 files and directories come to
    ~250 000 NFS operations per process. *)

type spec = {
  files : int;  (** regular files to create *)
  dir_every : int;  (** create a new subdirectory every N files (14 mimics
      FreeBSD src's file:dir ratio) *)
  fanout : int;  (** directories per level of the tree *)
}

val default_spec : spec
(** Paper-scale: 33 430 files + ~2 570 directories ≈ 36 000 objects. *)

val scaled_spec : float -> spec
(** [scaled_spec s] shrinks the tree by factor [s] (0 < s ≤ 1), keeping
    the file:dir ratio — lets the experiments run at reduced scale with
    the same shape. *)

val ops_estimate : spec -> int
(** Expected NFS operation count for one process. *)

val run : Client.t -> root:Slice_nfs.Fh.t -> name:string -> spec -> float
(** Fiber: perform one untar under a fresh subtree [name] of [root];
    returns elapsed simulated seconds.
    @raise Failure on unexpected NFS errors. *)

module Nfs = Slice_nfs.Nfs

type spec = { files : int; dir_every : int; fanout : int }

let default_spec = { files = 33430; dir_every = 13; fanout = 8 }

let scaled_spec s =
  if s <= 0.0 || s > 1.0 then invalid_arg "Untar.scaled_spec";
  { default_spec with files = max 20 (int_of_float (float_of_int default_spec.files *. s)) }

(* 7 ops per file, 5 per directory (lookup, access, mkdir, getattr,
   setattr), plus tree-walk lookups are already counted in the file
   sequence. *)
let ops_estimate spec = (spec.files * 7) + (spec.files / spec.dir_every * 5)

let fail_st ctx st = failwith (Printf.sprintf "untar %s: %s" ctx (Nfs.status_name st))

let create_one_file cl dir name =
  (* The paper's seven-operation create sequence. *)
  (match Client.lookup cl dir name with
  | Error Nfs.ERR_NOENT -> ()
  | Error st -> fail_st "lookup!" st
  | Ok _ -> failwith "untar: file already exists");
  (match Client.access cl dir with Ok _ -> () | Error st -> fail_st "access" st);
  let fh =
    match Client.create_file cl dir name with
    | Ok (fh, _) -> fh
    | Error st -> fail_st "create" st
  in
  (match Client.getattr cl fh with Ok _ -> () | Error st -> fail_st "getattr" st);
  (match Client.lookup cl dir name with Ok _ -> () | Error st -> fail_st "lookup2" st);
  (match Client.setattr cl fh (Nfs.sattr_times ~mtime:0.0 ()) with
  | Ok _ -> ()
  | Error st -> fail_st "setattr1" st);
  match Client.setattr cl fh { Nfs.sattr_empty with set_mode = Some 0o644 } with
  | Ok _ -> ()
  | Error st -> fail_st "setattr2" st

let create_one_dir cl dir name =
  (match Client.lookup cl dir name with
  | Error Nfs.ERR_NOENT -> ()
  | Error st -> fail_st "dlookup" st
  | Ok _ -> failwith "untar: dir already exists");
  (match Client.access cl dir with Ok _ -> () | Error st -> fail_st "daccess" st);
  let fh =
    match Client.mkdir cl dir name with Ok (fh, _) -> fh | Error st -> fail_st "mkdir" st
  in
  (match Client.getattr cl fh with Ok _ -> () | Error st -> fail_st "dgetattr" st);
  (match Client.setattr cl fh { Nfs.sattr_empty with set_mode = Some 0o755 } with
  | Ok _ -> ()
  | Error st -> fail_st "dsetattr" st);
  fh

let run (cl : Client.t) ~root ~name spec =
  let t0 = Client.now cl in
  let top = create_one_dir cl root name in
  (* Source trees are deep: most new directories nest under the most
     recently created one, with periodic returns toward the top — so a
     directory's ancestry is long, which is what lets mkdir switching's
     per-level redirection coin mix subtrees across the server sites.
     Files are created under a sliding window of recent directories. *)
  let dirs = ref [| top |] in
  let dir_count = ref 1 in
  let last_dir = ref top in
  let created = ref 0 in
  while !created < spec.files do
    if !created mod spec.dir_every = spec.dir_every - 1 then begin
      (* descend depth-first, popping up to a recent ancestor now and
         then (never all the way to the top: in a source tree nearly all
         directories are deep) *)
      let parent =
        if !dir_count mod 10 = 0 then !dirs.(!dir_count mod Array.length !dirs)
        else !last_dir
      in
      let dname = Printf.sprintf "dir%05d" !dir_count in
      let fh = create_one_dir cl parent dname in
      last_dir := fh;
      incr dir_count;
      if Array.length !dirs < spec.fanout then dirs := Array.append !dirs [| fh |]
      else !dirs.(!dir_count mod spec.fanout) <- fh
    end;
    let parent = !dirs.(!created mod Array.length !dirs) in
    create_one_file cl parent (Printf.sprintf "file%06d" !created);
    incr created
  done;
  Client.now cl -. t0

lib/workload/specsfs.ml: Array Client Format Int64 List Option Printf Slice_nfs Slice_sim Slice_util

lib/workload/untar.ml: Array Client Printf Slice_nfs

lib/workload/specsfs.mli: Client Format Slice_nfs Slice_sim

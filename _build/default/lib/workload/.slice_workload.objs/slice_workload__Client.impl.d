lib/workload/client.ml: Int64 List Slice_net Slice_nfs Slice_sim Slice_storage Slice_util

lib/workload/untar.mli: Client Slice_nfs

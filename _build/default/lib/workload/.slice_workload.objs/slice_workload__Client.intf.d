lib/workload/client.mli: Slice_net Slice_nfs Slice_storage Slice_util

module Engine = Slice_sim.Engine
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Prng = Slice_util.Prng
module Stats = Slice_util.Stats

type config = {
  offered_iops : float;
  processes : int;
  duration : float;
  warmup : float;
  bytes_per_iops : float;
  max_outstanding : int;
  seed : int;
}

let default_config =
  {
    offered_iops = 500.0;
    processes = 4;
    duration = 5.0;
    warmup = 1.0;
    bytes_per_iops = 1_000_000.0;
    max_outstanding = 16;
    seed = 11;
  }

type result = {
  offered : float;
  delivered : float;
  avg_latency_ms : float;
  p95_latency_ms : float;
  ops_measured : int;
  errors : int;
  fileset_files : int;
  fileset_bytes : int64;
}

let pp_result fmt r =
  Format.fprintf fmt
    "offered %.0f IOPS -> delivered %.0f IOPS, latency %.2f ms avg / %.2f ms p95 (%d ops, %d errors, %d files, %.1f MB)"
    r.offered r.delivered r.avg_latency_ms r.p95_latency_ms r.ops_measured r.errors
    r.fileset_files
    (Int64.to_float r.fileset_bytes /. 1e6)

(* SPECsfs97 file-size distribution: 94 % of files at or below 64 KB,
   with a byte-heavy large tail (~24 % of bytes in the small files). *)
let size_dist =
  [|
    (33.0, 1024);
    (21.0, 2048);
    (13.0, 4096);
    (10.0, 8192);
    (8.0, 16384);
    (5.0, 32768);
    (4.0, 65536);
    (2.0, 131072);
    (1.0, 262144);
    (0.7, 1048576);
    (0.3, 4194304);
  |]

let mean_file_size =
  let total_w = Array.fold_left (fun a (w, _) -> a +. w) 0.0 size_dist in
  Array.fold_left (fun a (w, s) -> a +. (w *. float_of_int s)) 0.0 size_dist /. total_w

type op_kind =
  | O_lookup
  | O_read
  | O_write
  | O_getattr
  | O_setattr
  | O_readlink
  | O_readdir
  | O_create
  | O_remove
  | O_access
  | O_commit
  | O_fsstat

(* SFS97 NFS V3 operation mix (readdirplus folded into readdir). *)
let op_mix =
  [|
    (27.0, O_lookup);
    (18.0, O_read);
    (9.0, O_write);
    (11.0, O_getattr);
    (1.0, O_setattr);
    (7.0, O_readlink);
    (11.0, O_readdir);
    (1.0, O_create);
    (1.0, O_remove);
    (7.0, O_access);
    (5.0, O_commit);
    (1.0, O_fsstat);
  |]

type file_entry = { fe_fh : Fh.t; fe_dir : Fh.t; fe_name : string; fe_size : int }

type fileset = {
  fs_dirs : Fh.t array;
  fs_files : file_entry array;
  fs_links : file_entry array; (* symlinks, for readlink *)
  fs_bytes : int64;
}

let io_chunk = 32768

let write_whole cl fh size =
  let rec loop off =
    if off < size then begin
      let n = min io_chunk (size - off) in
      ignore (Client.write_at cl fh ~off:(Int64.of_int off) ~data:(Nfs.Synthetic n) ());
      loop (off + n)
    end
  in
  loop 0;
  if size > 0 then ignore (Client.commit cl fh)

let build_fileset (cl : Client.t) ~root ~proc ~files ~prng =
  let dir_count = max 1 (files / 24) in
  let top =
    match Client.mkdir cl root (Printf.sprintf "sfs%03d" proc) with
    | Ok (fh, _) -> fh
    | Error st -> failwith ("sfs setup mkdir: " ^ Nfs.status_name st)
  in
  let dirs =
    Array.init dir_count (fun i ->
        if i = 0 then top
        else
          match Client.mkdir cl top (Printf.sprintf "d%04d" i) with
          | Ok (fh, _) -> fh
          | Error st -> failwith ("sfs setup mkdir2: " ^ Nfs.status_name st))
  in
  let bytes = ref 0L in
  let entries =
    Array.init files (fun i ->
        let dir = dirs.(i mod dir_count) in
        let name = Printf.sprintf "f%05d" i in
        match Client.create_file cl dir name with
        | Ok (fh, _) ->
            let size = Prng.weighted prng (Array.map (fun (w, s) -> (w, s)) size_dist) in
            write_whole cl fh size;
            bytes := Int64.add !bytes (Int64.of_int size);
            { fe_fh = fh; fe_dir = dir; fe_name = name; fe_size = size }
        | Error st -> failwith ("sfs setup create: " ^ Nfs.status_name st))
  in
  let links =
    Array.init (max 1 (files / 20)) (fun i ->
        let dir = dirs.(i mod dir_count) in
        let name = Printf.sprintf "l%05d" i in
        match Client.symlink cl dir name ~target:"f00000" with
        | Ok (fh, _) -> { fe_fh = fh; fe_dir = dir; fe_name = name; fe_size = 0 }
        | Error st -> failwith ("sfs setup symlink: " ^ Nfs.status_name st))
  in
  { fs_dirs = dirs; fs_files = entries; fs_links = links; fs_bytes = !bytes }

(* Pick a file with an 80/20 hot-set skew. *)
let pick_file prng (fs : fileset) =
  let n = Array.length fs.fs_files in
  let hot = max 1 (n / 5) in
  if Prng.float prng 1.0 < 0.8 then fs.fs_files.(Prng.int prng hot)
  else fs.fs_files.(Prng.int prng n)

let aligned_offset prng size =
  if size <= io_chunk then 0
  else Prng.int prng (size / io_chunk) * io_chunk

let one_op (cl : Client.t) prng (fs : fileset) ~fresh_names =
  match Prng.weighted prng op_mix with
  | O_lookup ->
      let f = pick_file prng fs in
      ignore (Client.lookup cl f.fe_dir f.fe_name)
  | O_read ->
      let f = pick_file prng fs in
      let off = aligned_offset prng f.fe_size in
      let count = min io_chunk (max 1 (f.fe_size - off)) in
      ignore (Client.read_at cl f.fe_fh ~off:(Int64.of_int off) ~count)
  | O_write ->
      let f = pick_file prng fs in
      let off = aligned_offset prng f.fe_size in
      let count = min io_chunk (max 1 (f.fe_size - off)) in
      ignore (Client.write_at cl f.fe_fh ~off:(Int64.of_int off) ~data:(Nfs.Synthetic count) ())
  | O_getattr ->
      let f = pick_file prng fs in
      ignore (Client.getattr cl f.fe_fh)
  | O_setattr ->
      let f = pick_file prng fs in
      ignore (Client.setattr cl f.fe_fh (Nfs.sattr_times ~mtime:0.0 ()))
  | O_readlink ->
      let l = fs.fs_links.(Prng.int prng (Array.length fs.fs_links)) in
      ignore (Client.call cl (Nfs.Readlink l.fe_fh))
  | O_readdir ->
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      ignore (Client.call cl (Nfs.Readdir (d, 0L, 32)))
  | O_create ->
      incr fresh_names;
      let d = fs.fs_dirs.(Prng.int prng (Array.length fs.fs_dirs)) in
      let name = Printf.sprintf "tmp%07d" !fresh_names in
      (match Client.create_file cl d name with
      | Ok _ -> ignore (Client.remove cl d name = Ok ()) (* keep set stable *)
      | Error _ -> ())
  | O_remove ->
      (* modeled together with create to keep the working set stable *)
      let f = pick_file prng fs in
      ignore (Client.getattr cl f.fe_fh)
  | O_access ->
      let f = pick_file prng fs in
      ignore (Client.access cl f.fe_fh)
  | O_commit ->
      let f = pick_file prng fs in
      ignore (Client.commit cl f.fe_fh)
  | O_fsstat ->
      let f = pick_file prng fs in
      ignore (Client.call cl (Nfs.Fsstat f.fe_fh))

let run eng ~clients ~root cfg =
  let n_clients = Array.length clients in
  if n_clients = 0 then invalid_arg "Specsfs.run: no clients";
  let total_bytes = cfg.offered_iops *. cfg.bytes_per_iops in
  let files_total = max 40 (int_of_float (total_bytes /. mean_file_size)) in
  let files_per_proc = max 10 (files_total / cfg.processes) in
  let result = ref None in
  Engine.spawn eng (fun () ->
      (* --- setup phase: build each process's file set in parallel --- *)
      let filesets = Array.make cfg.processes None in
      Slice_sim.Fiber.join_all eng
        (List.init cfg.processes (fun p () ->
             let cl = clients.(p mod n_clients) in
             let prng = Prng.create (cfg.seed + (p * 7717)) in
             filesets.(p) <-
               Some (build_fileset cl ~root ~proc:p ~files:files_per_proc ~prng)));
      let filesets = Array.map Option.get filesets in
      (* --- timed phase: open-loop Poisson arrivals per process --- *)
      let t0 = Engine.now eng in
      let t_measure = t0 +. cfg.warmup in
      let t_end = t_measure +. cfg.duration in
      let lat = Stats.create () in
      let measured = ref 0 in
      let errors = ref 0 in
      let rate_per_proc = cfg.offered_iops /. float_of_int cfg.processes in
      Slice_sim.Fiber.join_all eng
        (List.init cfg.processes (fun p () ->
             let cl = clients.(p mod n_clients) in
             let prng = Prng.create (cfg.seed + 13 + (p * 7919)) in
             let fs = filesets.(p) in
             let fresh_names = ref (p * 1_000_000) in
             let inflight = ref 0 in
             let rec arrivals t_next =
               if t_next < t_end then begin
                 Engine.sleep_until eng t_next;
                 if !inflight < cfg.max_outstanding then begin
                   incr inflight;
                   Engine.spawn eng (fun () ->
                       let s = Engine.now eng in
                       let errs0 = Client.errors cl in
                       one_op cl prng fs ~fresh_names;
                       decr inflight;
                       let fin = Engine.now eng in
                       (* count ops arriving within the measured window;
                          they may complete during the drain *)
                       if s >= t_measure && s < t_end then begin
                         Stats.add lat (fin -. s);
                         incr measured;
                         if Client.errors cl > errs0 then incr errors
                       end)
                 end;
                 arrivals (t_next +. Prng.exponential prng (1.0 /. rate_per_proc))
               end
             in
             arrivals (t0 +. Prng.float prng 0.05)));
      let fs_bytes = Array.fold_left (fun a fs -> Int64.add a fs.fs_bytes) 0L filesets in
      let fs_files = Array.fold_left (fun a fs -> a + Array.length fs.fs_files) 0 filesets in
      result :=
        Some
          {
            offered = cfg.offered_iops;
            delivered = float_of_int !measured /. cfg.duration;
            avg_latency_ms = Stats.mean lat *. 1e3;
            p95_latency_ms = Stats.percentile lat 95.0 *. 1e3;
            ops_measured = !measured;
            errors = !errors;
            fileset_files = fs_files;
            fileset_bytes = fs_bytes;
          });
  Engine.run eng;
  match !result with Some r -> r | None -> failwith "Specsfs.run: did not complete"

(** SPECsfs97-style load generator (Figures 5 and 6).

    Reproduces the benchmark's defining properties: a self-scaling file
    set skewed heavily toward small files (94 % of files ≤ 64 KB, yet only
    ~24 % of the bytes — the large files "pollute the disks"), the
    published NFS V3 operation mix (lookup 27 %, read 18 %, write 9 %,
    getattr 11 %, readdirplus/readdir 11 %, access 7 %, readlink 7 %,
    commit 5 %, …), Poisson open-loop arrivals at a configured offered
    load, and measurement of delivered throughput (IOPS) and mean latency.
    Like SPECsfs, the generator speaks NFS directly from user space and
    never exercises the client kernel stack.

    The file set scales with offered load through [bytes_per_iops]
    (SPECsfs97 uses 10 MB per op/s; scale it down for quick runs — the
    cache-overflow knee of Figure 6 moves accordingly). *)

type config = {
  offered_iops : float;  (** aggregate target load *)
  processes : int;  (** generator processes (spread over the clients) *)
  duration : float;  (** measured window, seconds *)
  warmup : float;
  bytes_per_iops : float;  (** file-set scaling rule *)
  max_outstanding : int;  (** per-process concurrency cap *)
  seed : int;
}

val default_config : config

type result = {
  offered : float;
  delivered : float;  (** completed ops/s over the measured window *)
  avg_latency_ms : float;
  p95_latency_ms : float;
  ops_measured : int;
  errors : int;
  fileset_files : int;
  fileset_bytes : int64;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Slice_sim.Engine.t -> clients:Client.t array -> root:Slice_nfs.Fh.t -> config -> result
(** Builds the file set, runs warmup + measured window, drains, and
    returns the result. Drives the engine to completion internally. *)

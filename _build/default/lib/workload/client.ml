module Engine = Slice_sim.Engine
module Fiber = Slice_sim.Fiber
module Rpc = Slice_net.Rpc
module Nfs = Slice_nfs.Nfs
module Fh = Slice_nfs.Fh
module Codec = Slice_nfs.Codec
module Host = Slice_storage.Host
module Stats = Slice_util.Stats

type costs = { per_op : float; read_per_byte : float; write_per_byte : float }

(* 40 MB/s write ceiling and ~65 MB/s zero-copy read ceiling through the
   FreeBSD NFS/UDP stack (Table 2 discussion). *)
let default_costs = { per_op = 25e-6; read_per_byte = 1.0 /. 65e6; write_per_byte = 1.0 /. 40e6 }

type t = {
  host : Host.t;
  rpc : Rpc.t;
  server : Slice_net.Packet.addr;
  costs : costs;
  io_size : int;
  readahead : int;
  write_window : int;
  latency : Stats.t;
  mutable ops : int;
  mutable errs : int;
}

let create host ~server ?(port = 1000) ?(costs = default_costs) ?(io_size = 32768)
    ?(readahead = 4) ?(write_window = 8) () =
  {
    host;
    rpc = Rpc.create host.Host.net host.Host.addr ~port;
    server;
    costs;
    io_size;
    readahead;
    write_window;
    latency = Stats.create ();
    ops = 0;
    errs = 0;
  }

exception Unexpected_reply of string

let call t (c : Nfs.call) : Nfs.response =
  let start = Engine.now t.host.Host.eng in
  let data_cost =
    match c with
    | Nfs.Write (_, _, _, d) -> t.costs.write_per_byte *. float_of_int (Nfs.wdata_length d)
    | _ -> 0.0
  in
  Host.cpu t.host (t.costs.per_op +. data_cost);
  let xid = Rpc.fresh_xid t.rpc in
  let payload = Codec.encode_call ~xid c in
  (* commits cover arbitrarily much dirty data; give them a longer
     retransmission timer, like real clients do for COMMIT/stable writes *)
  let timeout = match c with Nfs.Commit _ -> 1.0 | _ -> 0.1 in
  (* hard-mount behaviour: keep retrying; servers dedup via their DRC *)
  let reply =
    Rpc.call t.rpc ~timeout ~retries:40 ~dst:t.server ~dport:2049
      ~extra_size:(Codec.extra_size_of_call c) payload
  in
  let _, resp = Codec.decode_reply reply in
  (* receive-path cost for data read *)
  (match resp with
  | Ok (Nfs.RRead (d, _, _)) ->
      Host.cpu t.host (t.costs.read_per_byte *. float_of_int (Nfs.wdata_length d))
  | _ -> ());
  t.ops <- t.ops + 1;
  Stats.add t.latency (Engine.now t.host.Host.eng -. start);
  (match resp with Error _ -> t.errs <- t.errs + 1 | Ok _ -> ());
  resp

let wrong name = raise (Unexpected_reply name)

let lookup t dir name =
  match call t (Nfs.Lookup (dir, name)) with
  | Ok (Nfs.RLookup (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | Ok _ -> wrong "lookup"

let create_file t dir name =
  match call t (Nfs.Create (dir, name)) with
  | Ok (Nfs.RCreate (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | Ok _ -> wrong "create"

let mkdir t dir name =
  match call t (Nfs.Mkdir (dir, name)) with
  | Ok (Nfs.RMkdir (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | Ok _ -> wrong "mkdir"

let symlink t dir name ~target =
  match call t (Nfs.Symlink (dir, name, target)) with
  | Ok (Nfs.RSymlink (fh, a)) -> Ok (fh, a)
  | Error st -> Error st
  | Ok _ -> wrong "symlink"

let remove t dir name =
  match call t (Nfs.Remove (dir, name)) with
  | Ok Nfs.RRemove -> Ok ()
  | Error st -> Error st
  | Ok _ -> wrong "remove"

let rmdir t dir name =
  match call t (Nfs.Rmdir (dir, name)) with
  | Ok Nfs.RRmdir -> Ok ()
  | Error st -> Error st
  | Ok _ -> wrong "rmdir"

let rename t od on nd nn =
  match call t (Nfs.Rename (od, on, nd, nn)) with
  | Ok Nfs.RRename -> Ok ()
  | Error st -> Error st
  | Ok _ -> wrong "rename"

let link t file ~dir name =
  match call t (Nfs.Link (file, dir, name)) with
  | Ok (Nfs.RLink a) -> Ok a
  | Error st -> Error st
  | Ok _ -> wrong "link"

let getattr t fh =
  match call t (Nfs.Getattr fh) with
  | Ok (Nfs.RGetattr a) -> Ok a
  | Error st -> Error st
  | Ok _ -> wrong "getattr"

let setattr t fh s =
  match call t (Nfs.Setattr (fh, s)) with
  | Ok (Nfs.RSetattr a) -> Ok a
  | Error st -> Error st
  | Ok _ -> wrong "setattr"

let access t fh =
  match call t (Nfs.Access (fh, 0x3F)) with
  | Ok (Nfs.RAccess (_, a)) -> Ok a
  | Error st -> Error st
  | Ok _ -> wrong "access"

let readdir_all t dir =
  let rec loop cookie acc =
    match call t (Nfs.Readdir (dir, cookie, 64)) with
    | Ok (Nfs.RReaddir (entries, next, eof)) ->
        let acc = List.rev_append entries acc in
        if eof then Ok (List.rev acc) else loop next acc
    | Error st -> Error st
    | Ok _ -> wrong "readdir"
  in
  loop 0L []

let write_at t fh ~off ~data ?(stable = Nfs.Unstable) () =
  match call t (Nfs.Write (fh, off, stable, data)) with
  | Ok (Nfs.RWrite (_, _, a)) -> Ok a
  | Error st -> Error st
  | Ok _ -> wrong "write"

let read_at t fh ~off ~count =
  match call t (Nfs.Read (fh, off, count)) with
  | Ok (Nfs.RRead (d, eof, _)) -> Ok (d, eof)
  | Error st -> Error st
  | Ok _ -> wrong "read"

let commit_call t fh =
  match call t (Nfs.Commit (fh, 0L, 0)) with
  | Ok (Nfs.RCommit _) -> Ok ()
  | Error st -> Error st
  | Ok _ -> wrong "commit"

let commit = commit_call

let chunks_of ~io_size ~bytes =
  let n = Int64.to_int (Int64.div bytes (Int64.of_int io_size)) in
  let rem = Int64.to_int (Int64.rem bytes (Int64.of_int io_size)) in
  (n, rem)

let sequential_write t ?(commit = true) fh ~bytes =
  let full, rem = chunks_of ~io_size:t.io_size ~bytes in
  let total = full + if rem > 0 then 1 else 0 in
  Fiber.parallel_window t.host.Host.eng ~window:t.write_window total (fun i ->
      let len = if i < full then t.io_size else rem in
      let off = Int64.of_int (i * t.io_size) in
      ignore (write_at t fh ~off ~data:(Nfs.Synthetic len) ()));
  if commit then ignore (commit_call t fh)

let sequential_read t fh ~bytes =
  let full, rem = chunks_of ~io_size:t.io_size ~bytes in
  let total = full + if rem > 0 then 1 else 0 in
  Fiber.parallel_window t.host.Host.eng ~window:t.readahead total (fun i ->
      let len = if i < full then t.io_size else rem in
      let off = Int64.of_int (i * t.io_size) in
      ignore (read_at t fh ~off ~count:len))

let now t = Engine.now t.host.Host.eng
let host t = t.host
let ops_completed t = t.ops
let op_latency t = t.latency
let errors t = t.errs
let retransmissions t = Rpc.retransmissions t.rpc

(** NFS client stack model.

    Calibrated to the paper's FreeBSD 4.0 clients: the write path copies
    and checksums data and "saturates the client CPU below 40 MB/s"; the
    read path is zero-copy ("we modified the FreeBSD client for zero-copy
    reading") and tops out near 65 MB/s; sequential reads keep a
    read-ahead pipeline of 4 × 32 KB blocks in flight, writes a deeper
    write-behind window followed by NFS V3 commit. *)

type costs = {
  per_op : float;  (** fixed client CPU per RPC (syscall + RPC layers) *)
  read_per_byte : float;  (** zero-copy receive path *)
  write_per_byte : float;  (** copy + checksum transmit path *)
}

val default_costs : costs

type t

val create :
  Slice_storage.Host.t ->
  server:Slice_net.Packet.addr ->
  ?port:int ->
  ?costs:costs ->
  ?io_size:int ->
  ?readahead:int ->
  ?write_window:int ->
  unit ->
  t
(** [server] is the (virtual) NFS server address; [port] is this client
    endpoint's own port — give each concurrent client process on a host a
    distinct port. Defaults: io_size 32 KB, readahead 4, write window 8. *)

val call : t -> Slice_nfs.Nfs.call -> Slice_nfs.Nfs.response
(** Fiber: one synchronous NFS RPC, charging client CPU and recording
    latency. *)

exception Unexpected_reply of string

(** {2 Name-space sugar (fiber context; raise {!Unexpected_reply} on
    protocol mismatch, return [Error status] on NFS errors)} *)

val lookup : t -> Slice_nfs.Fh.t -> string ->
  (Slice_nfs.Fh.t * Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val create_file : t -> Slice_nfs.Fh.t -> string ->
  (Slice_nfs.Fh.t * Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val mkdir : t -> Slice_nfs.Fh.t -> string ->
  (Slice_nfs.Fh.t * Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val symlink : t -> Slice_nfs.Fh.t -> string -> target:string ->
  (Slice_nfs.Fh.t * Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val remove : t -> Slice_nfs.Fh.t -> string -> (unit, Slice_nfs.Nfs.status) result
val rmdir : t -> Slice_nfs.Fh.t -> string -> (unit, Slice_nfs.Nfs.status) result

val rename : t -> Slice_nfs.Fh.t -> string -> Slice_nfs.Fh.t -> string ->
  (unit, Slice_nfs.Nfs.status) result

val link : t -> Slice_nfs.Fh.t -> dir:Slice_nfs.Fh.t -> string ->
  (Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val getattr : t -> Slice_nfs.Fh.t -> (Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val setattr : t -> Slice_nfs.Fh.t -> Slice_nfs.Nfs.sattr ->
  (Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val access : t -> Slice_nfs.Fh.t -> (Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val readdir_all : t -> Slice_nfs.Fh.t -> (Slice_nfs.Nfs.entry list, Slice_nfs.Nfs.status) result
(** Iterate a directory to EOF (follows the µproxy's cross-site cookie
    chain under name hashing). *)

(** {2 Data I/O} *)

val write_at : t -> Slice_nfs.Fh.t -> off:int64 -> data:Slice_nfs.Nfs.wdata ->
  ?stable:Slice_nfs.Nfs.stable_how -> unit -> (Slice_nfs.Nfs.fattr, Slice_nfs.Nfs.status) result

val read_at : t -> Slice_nfs.Fh.t -> off:int64 -> count:int ->
  (Slice_nfs.Nfs.wdata * bool, Slice_nfs.Nfs.status) result

val commit : t -> Slice_nfs.Fh.t -> (unit, Slice_nfs.Nfs.status) result

val sequential_write : t -> ?commit:bool -> Slice_nfs.Fh.t -> bytes:int64 -> unit
(** dd-style: stream [bytes] of synthetic data in io_size requests with
    the write-behind window, then (by default) commit. [~commit:false]
    returns when the last write RPC completes — dd's own notion of
    elapsed time, which excludes the server-side flush tail. *)

val sequential_read : t -> Slice_nfs.Fh.t -> bytes:int64 -> unit
(** dd-style: stream with the read-ahead pipeline. *)

(** {2 Statistics} *)

val now : t -> float
(** Current simulated time at this client. *)

val host : t -> Slice_storage.Host.t

val ops_completed : t -> int
val op_latency : t -> Slice_util.Stats.t
val errors : t -> int
(** NFS error statuses received. *)

val retransmissions : t -> int

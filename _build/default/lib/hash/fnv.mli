(** FNV-1a 64-bit hash. Kept as the "competing hash function" the paper
    compared MD5 against for request routing; the bench suite reproduces
    that ablation (distribution balance vs. cost). *)

val hash : string -> int64
val bucket : string -> int -> int
(** [bucket s n] maps [s] onto [\[0, n)]. *)

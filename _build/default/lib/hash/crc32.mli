(** CRC-32 (IEEE 802.3 polynomial, the zlib variant). Guards write-ahead
    log records so recovery can detect torn tails after a crash. *)

val string : string -> int32
val bytes : bytes -> pos:int -> len:int -> int32

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let hash s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let bucket s n =
  if n <= 0 then invalid_arg "Fnv.bucket: n must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash s) 1) (Int64.of_int n))

(* RFC 1321. The sine-derived constants are computed at module init:
   T[i] = floor(2^32 * abs(sin(i+1))), which avoids transcribing 64 magic
   numbers and is bit-exact because sin is correctly rounded well within
   the 32 bits we keep. *)

let t_const =
  Array.init 64 (fun i ->
      let v = Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0 in
      Int64.to_int32 (Int64.of_float v))

let shifts =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let rotl32 x s = Int32.logor (Int32.shift_left x s) (Int32.shift_right_logical x (32 - s))

type state = { mutable a : int32; mutable b : int32; mutable c : int32; mutable d : int32 }

let process_block st block off =
  let m = Array.make 16 0l in
  for j = 0 to 15 do
    m.(j) <- Bytes.get_int32_le block (off + (4 * j))
  done;
  let a = ref st.a and b = ref st.b and c = ref st.c and d = ref st.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
      else if i < 32 then
        (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c), ((5 * i) + 1) mod 16)
      else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
      else (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), 7 * i mod 16)
    in
    let sum = Int32.add (Int32.add (Int32.add f !a) t_const.(i)) m.(g) in
    let na = !d in
    let nd = !c in
    let nc = !b in
    let nb = Int32.add !b (rotl32 sum shifts.(i)) in
    a := na;
    b := nb;
    c := nc;
    d := nd
  done;
  st.a <- Int32.add st.a !a;
  st.b <- Int32.add st.b !b;
  st.c <- Int32.add st.c !c;
  st.d <- Int32.add st.d !d

let digest_bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then invalid_arg "Md5.digest_bytes";
  let st = { a = 0x67452301l; b = 0xefcdab89l; c = 0x98badcfel; d = 0x10325476l } in
  let full_blocks = len / 64 in
  for i = 0 to full_blocks - 1 do
    process_block st buf (pos + (64 * i))
  done;
  (* Tail: remaining bytes + 0x80 + zero pad + 64-bit little-endian bit length. *)
  let rem = len - (64 * full_blocks) in
  let tail_len = if rem + 9 <= 64 then 64 else 128 in
  let tail = Bytes.make tail_len '\000' in
  Bytes.blit buf (pos + (64 * full_blocks)) tail 0 rem;
  Bytes.set tail rem '\x80';
  Bytes.set_int64_le tail (tail_len - 8) (Int64.mul (Int64.of_int len) 8L);
  process_block st tail 0;
  if tail_len = 128 then process_block st tail 64;
  let out = Bytes.create 16 in
  Bytes.set_int32_le out 0 st.a;
  Bytes.set_int32_le out 4 st.b;
  Bytes.set_int32_le out 8 st.c;
  Bytes.set_int32_le out 12 st.d;
  Bytes.unsafe_to_string out

let digest msg = digest_bytes (Bytes.unsafe_of_string msg) ~pos:0 ~len:(String.length msg)

let to_hex raw =
  let b = Buffer.create 32 in
  String.iter (fun ch -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch))) raw;
  Buffer.contents b

let hex msg = to_hex (digest msg)

let fold64 msg =
  let raw = digest msg in
  let b = Bytes.unsafe_of_string raw in
  Bytes.get_int64_le b 0

let bucket msg n =
  if n <= 0 then invalid_arg "Md5.bucket: n must be positive";
  let v = Int64.shift_right_logical (fold64 msg) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

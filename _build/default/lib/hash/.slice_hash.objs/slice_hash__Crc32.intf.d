lib/hash/crc32.mli:

lib/hash/fnv.ml: Char Int64 String

lib/hash/fnv.mli:

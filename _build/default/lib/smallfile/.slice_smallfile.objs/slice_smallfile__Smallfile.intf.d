lib/smallfile/smallfile.mli: Slice_disk Slice_net Slice_storage

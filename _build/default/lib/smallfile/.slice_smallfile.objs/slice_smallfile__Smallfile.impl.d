lib/smallfile/smallfile.ml: Array Bytes Hashtbl Int64 Slice_disk Slice_nfs Slice_storage String

(** Peer-peer protocol between directory servers (Section 4.3): update
    link counts for create/link/remove and mkdir/rmdir crossing sites,
    follow cross-site links for lookup/getattr/setattr, and maintain
    parent-directory entry counts and modify times.

    Every state-changing message carries an operation id; receivers keep a
    logged dedup set, making re-delivery after crash recovery idempotent —
    the foundation of the light two-phase commit used for the infrequent
    cross-site ("orphaned directory") operations of mkdir switching. *)

type msg =
  | Getattr of Slice_nfs.Fh.t
  | Setattr of { op_id : int64; fh : Slice_nfs.Fh.t; sattr : Slice_nfs.Nfs.sattr }
  | Nlink of { op_id : int64; fh : Slice_nfs.Fh.t; delta : int }
  | Entry_count of { op_id : int64; dir : Slice_nfs.Fh.t; delta : int; mtime : float }
  | Add_entry of {
      op_id : int64;
      dir : Slice_nfs.Fh.t;
      name : string;
      child : Slice_nfs.Fh.t;
    }
  | Remove_entry of { op_id : int64; dir : Slice_nfs.Fh.t; name : string }
  | Get_entry of { dir : Slice_nfs.Fh.t; name : string }

type reply =
  | Ack
  | Rattr of Slice_nfs.Nfs.fattr
  | Rentry of Slice_nfs.Fh.t
  | Rerr of Slice_nfs.Nfs.status

val encode_msg : xid:int -> msg -> bytes
val decode_msg : bytes -> int * msg
val encode_reply : xid:int -> reply -> bytes
val decode_reply : bytes -> int * reply

val enc_attr : Slice_xdr.Xdr.Enc.t -> Slice_nfs.Nfs.fattr -> unit
(** Shared attribute encoding, reused by the directory server's log
    records. *)

val dec_attr : Slice_xdr.Xdr.Dec.t -> Slice_nfs.Nfs.fattr

exception Malformed

lib/dir/dirserver.mli: Slice_net Slice_nfs Slice_storage

lib/dir/peer.ml: Float Slice_nfs Slice_xdr

lib/dir/dirserver.ml: Bytes Hashtbl Int64 List Option Peer Slice_net Slice_nfs Slice_sim Slice_storage Slice_wal Slice_xdr

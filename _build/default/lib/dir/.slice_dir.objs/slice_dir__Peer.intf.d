lib/dir/peer.mli: Slice_nfs Slice_xdr

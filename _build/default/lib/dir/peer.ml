module Enc = Slice_xdr.Xdr.Enc
module Dec = Slice_xdr.Xdr.Dec
module Fh = Slice_nfs.Fh
module Nfs = Slice_nfs.Nfs

exception Malformed

type msg =
  | Getattr of Fh.t
  | Setattr of { op_id : int64; fh : Fh.t; sattr : Nfs.sattr }
  | Nlink of { op_id : int64; fh : Fh.t; delta : int }
  | Entry_count of { op_id : int64; dir : Fh.t; delta : int; mtime : float }
  | Add_entry of { op_id : int64; dir : Fh.t; name : string; child : Fh.t }
  | Remove_entry of { op_id : int64; dir : Fh.t; name : string }
  | Get_entry of { dir : Fh.t; name : string }

type reply = Ack | Rattr of Nfs.fattr | Rentry of Fh.t | Rerr of Nfs.status

let enc_fh e fh = Enc.opaque e (Fh.encode fh)
let dec_fh d = match Fh.decode (Dec.opaque d) with Some fh -> fh | None -> raise Malformed

let enc_i e v = Enc.u32 e (v land 0xFFFFFFFF)

let dec_i d =
  let v = Dec.u32 d in
  (* sign-extend deltas encoded as u32 *)
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let enc_time e t =
  Enc.u32 e (int_of_float (Float.floor t));
  Enc.u32 e (int_of_float ((t -. Float.floor t) *. 1e9))

let dec_time d =
  let s = Dec.u32 d in
  let ns = Dec.u32 d in
  float_of_int s +. (float_of_int ns /. 1e9)

let enc_opt e enc = function
  | None -> Enc.bool e false
  | Some v ->
      Enc.bool e true;
      enc e v

let dec_opt d dec = if Dec.bool d then Some (dec d) else None

let enc_sattr e (s : Nfs.sattr) =
  enc_opt e (fun e v -> Enc.u32 e v) s.set_mode;
  enc_opt e (fun e v -> Enc.u32 e v) s.set_uid;
  enc_opt e (fun e v -> Enc.u32 e v) s.set_gid;
  enc_opt e (fun e v -> Enc.u64 e v) s.set_size;
  enc_opt e enc_time s.set_atime;
  enc_opt e enc_time s.set_mtime

let dec_sattr d : Nfs.sattr =
  let set_mode = dec_opt d Dec.u32 in
  let set_uid = dec_opt d Dec.u32 in
  let set_gid = dec_opt d Dec.u32 in
  let set_size = dec_opt d Dec.u64 in
  let set_atime = dec_opt d dec_time in
  let set_mtime = dec_opt d dec_time in
  { set_mode; set_uid; set_gid; set_size; set_atime; set_mtime }

let int_of_ftype = function Fh.Reg -> 1 | Fh.Dir -> 2 | Fh.Lnk -> 5

let ftype_of_int = function
  | 1 -> Fh.Reg
  | 2 -> Fh.Dir
  | 5 -> Fh.Lnk
  | _ -> raise Malformed

let enc_attr e (a : Nfs.fattr) =
  Enc.u32 e (int_of_ftype a.ftype);
  Enc.u32 e a.mode;
  Enc.u32 e a.nlink;
  Enc.u32 e a.uid;
  Enc.u32 e a.gid;
  Enc.u64 e a.size;
  Enc.u64 e a.used;
  Enc.u64 e a.fileid;
  enc_time e a.atime;
  enc_time e a.mtime;
  enc_time e a.ctime

let dec_attr d : Nfs.fattr =
  let ftype = ftype_of_int (Dec.u32 d) in
  let mode = Dec.u32 d in
  let nlink = Dec.u32 d in
  let uid = Dec.u32 d in
  let gid = Dec.u32 d in
  let size = Dec.u64 d in
  let used = Dec.u64 d in
  let fileid = Dec.u64 d in
  let atime = dec_time d in
  let mtime = dec_time d in
  let ctime = dec_time d in
  { ftype; mode; nlink; uid; gid; size; used; fileid; atime; mtime; ctime }

let encode_msg ~xid msg =
  let e = Enc.create () in
  Enc.u32 e xid;
  (match msg with
  | Getattr fh ->
      Enc.u32 e 1;
      enc_fh e fh
  | Setattr { op_id; fh; sattr } ->
      Enc.u32 e 2;
      Enc.u64 e op_id;
      enc_fh e fh;
      enc_sattr e sattr
  | Nlink { op_id; fh; delta } ->
      Enc.u32 e 3;
      Enc.u64 e op_id;
      enc_fh e fh;
      enc_i e delta
  | Entry_count { op_id; dir; delta; mtime } ->
      Enc.u32 e 4;
      Enc.u64 e op_id;
      enc_fh e dir;
      enc_i e delta;
      enc_time e mtime
  | Add_entry { op_id; dir; name; child } ->
      Enc.u32 e 5;
      Enc.u64 e op_id;
      enc_fh e dir;
      Enc.str e name;
      enc_fh e child
  | Remove_entry { op_id; dir; name } ->
      Enc.u32 e 6;
      Enc.u64 e op_id;
      enc_fh e dir;
      Enc.str e name
  | Get_entry { dir; name } ->
      Enc.u32 e 7;
      enc_fh e dir;
      Enc.str e name);
  Enc.to_bytes e

let decode_msg buf =
  let d = Dec.of_bytes buf in
  try
    let xid = Dec.u32 d in
    let msg =
      match Dec.u32 d with
      | 1 -> Getattr (dec_fh d)
      | 2 ->
          let op_id = Dec.u64 d in
          let fh = dec_fh d in
          Setattr { op_id; fh; sattr = dec_sattr d }
      | 3 ->
          let op_id = Dec.u64 d in
          let fh = dec_fh d in
          Nlink { op_id; fh; delta = dec_i d }
      | 4 ->
          let op_id = Dec.u64 d in
          let dir = dec_fh d in
          let delta = dec_i d in
          Entry_count { op_id; dir; delta; mtime = dec_time d }
      | 5 ->
          let op_id = Dec.u64 d in
          let dir = dec_fh d in
          let name = Dec.str d in
          Add_entry { op_id; dir; name; child = dec_fh d }
      | 6 ->
          let op_id = Dec.u64 d in
          let dir = dec_fh d in
          Remove_entry { op_id; dir; name = Dec.str d }
      | 7 ->
          let dir = dec_fh d in
          Get_entry { dir; name = Dec.str d }
      | _ -> raise Malformed
    in
    (xid, msg)
  with Slice_xdr.Xdr.Truncated -> raise Malformed

let status_to_int : Nfs.status -> int = function
  | OK -> 0
  | ERR_PERM -> 1
  | ERR_NOENT -> 2
  | ERR_IO -> 5
  | ERR_EXIST -> 17
  | ERR_NOTDIR -> 20
  | ERR_ISDIR -> 21
  | ERR_NOSPC -> 28
  | ERR_NOTEMPTY -> 66
  | ERR_STALE -> 70
  | ERR_BADHANDLE -> 10001
  | ERR_JUKEBOX -> 10008
  | ERR_MISDIRECTED -> 20001

let status_of_int : int -> Nfs.status = function
  | 0 -> OK
  | 1 -> ERR_PERM
  | 2 -> ERR_NOENT
  | 5 -> ERR_IO
  | 17 -> ERR_EXIST
  | 20 -> ERR_NOTDIR
  | 21 -> ERR_ISDIR
  | 28 -> ERR_NOSPC
  | 66 -> ERR_NOTEMPTY
  | 70 -> ERR_STALE
  | 10001 -> ERR_BADHANDLE
  | 10008 -> ERR_JUKEBOX
  | 20001 -> ERR_MISDIRECTED
  | _ -> raise Malformed

let encode_reply ~xid reply =
  let e = Enc.create () in
  Enc.u32 e xid;
  (match reply with
  | Ack -> Enc.u32 e 1
  | Rattr a ->
      Enc.u32 e 2;
      enc_attr e a
  | Rentry fh ->
      Enc.u32 e 3;
      enc_fh e fh
  | Rerr st ->
      Enc.u32 e 4;
      Enc.u32 e (status_to_int st));
  Enc.to_bytes e

let decode_reply buf =
  let d = Dec.of_bytes buf in
  try
    let xid = Dec.u32 d in
    let reply =
      match Dec.u32 d with
      | 1 -> Ack
      | 2 -> Rattr (dec_attr d)
      | 3 -> Rentry (dec_fh d)
      | 4 -> Rerr (status_of_int (Dec.u32 d))
      | _ -> raise Malformed
    in
    (xid, reply)
  with Slice_xdr.Xdr.Truncated -> raise Malformed

lib/core/proxy.mli: Params Slice_net Slice_storage Table

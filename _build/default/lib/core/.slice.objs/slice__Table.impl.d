lib/core/table.ml: Array Slice_net

lib/core/proxy.ml: Array Bytes Hashtbl Int32 Int64 List Option Params Slice_net Slice_nfs Slice_sim Slice_storage Slice_util Table

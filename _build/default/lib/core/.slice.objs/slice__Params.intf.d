lib/core/params.mli:

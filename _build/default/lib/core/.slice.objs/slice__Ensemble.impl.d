lib/core/ensemble.ml: Array Int64 List Params Printf Proxy Slice_dir Slice_disk Slice_net Slice_nfs Slice_sim Slice_smallfile Slice_storage Table

lib/core/ensemble.mli: Params Proxy Slice_dir Slice_net Slice_nfs Slice_sim Slice_smallfile Slice_storage Table

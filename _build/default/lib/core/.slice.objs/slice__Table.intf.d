lib/core/table.mli: Slice_net

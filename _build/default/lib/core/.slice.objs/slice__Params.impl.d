lib/core/params.ml:

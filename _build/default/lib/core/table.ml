type t = { mutable map : Slice_net.Packet.addr array; mutable version : int }

let create map =
  if Array.length map = 0 then invalid_arg "Table.create: empty";
  { map = Array.copy map; version = 1 }

let nsites t = Array.length t.map

let lookup t i =
  if i < 0 || i >= Array.length t.map then invalid_arg "Table.lookup: bad site";
  t.map.(i)

let version t = t.version

let update t map =
  if Array.length map <> Array.length t.map then
    invalid_arg "Table.update: logical site count is fixed";
  t.map <- Array.copy map;
  t.version <- t.version + 1

let snapshot t = (Array.copy t.map, t.version)

lib/util/prng.mli:

lib/util/lru.mli:

lib/util/heap.mli:

lib/util/stats.mli:

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine for simulation purposes; bias is
     negligible for bounds far below 2^63. *)
  (* land max_int: Int64.to_int keeps the low 63 bits, which can land in
     OCaml's sign bit; mask to stay non-negative *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t mean =
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: weights must sum > 0";
  let x = float t total in
  let n = Array.length choices in
  let rec loop i acc =
    if i = n - 1 then snd choices.(i)
    else
      let acc = acc +. fst choices.(i) in
      if x < acc then snd choices.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Deterministic pseudo-random number generator (SplitMix64).

    The whole simulation must be reproducible from a single seed, so all
    randomness flows through explicitly-seeded generators rather than the
    global [Random] state. SplitMix64 is small, fast, and statistically
    adequate for workload generation and randomized placement. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Useful to
    give each simulated client its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (float * 'a) array -> 'a
(** [weighted t choices] picks an element with probability proportional to
    its weight. Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

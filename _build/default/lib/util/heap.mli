(** Imperative binary min-heap, ordered by a user-supplied comparison on
    elements. Used as the event queue of the simulation engine, so it must
    be fast and allocation-light. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order, not sorted). *)

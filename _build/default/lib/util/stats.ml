type t = {
  mutable n : int;
  mutable total : float;
  mutable sq_total : float;
  mutable mn : float;
  mutable mx : float;
  mutable samples : float list; (* retained for percentile queries *)
}

let create () =
  { n = 0; total = 0.0; sq_total = 0.0; mn = infinity; mx = neg_infinity; samples = [] }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.sq_total <- t.sq_total +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.samples <- x :: t.samples

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
let min t = t.mn
let max t = t.mx

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sq_total /. float_of_int t.n) -. (m *. m) in
    if var < 0.0 then 0.0 else sqrt var

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let arr = Array.of_list t.samples in
    Array.sort compare arr;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    arr.(idx)
  end

let merge a b =
  {
    n = a.n + b.n;
    total = a.total +. b.total;
    sq_total = a.sq_total +. b.sq_total;
    mn = Stdlib.min a.mn b.mn;
    mx = Stdlib.max a.mx b.mx;
    samples = List.rev_append a.samples b.samples;
  }

module Counter = struct
  type t = { mutable c : int }

  let create () = { c = 0 }
  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let get t = t.c
  let rate t ~elapsed = if elapsed <= 0.0 then 0.0 else float_of_int t.c /. elapsed
end

module Histogram = struct
  type t = { lo : float; hi : float; width : float; counts : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; width = (hi -. lo) /. float_of_int buckets; counts = Array.make (buckets + 1) 0 }

  let add t x =
    let nb = Array.length t.counts - 1 in
    let i =
      if x < t.lo then 0
      else if x >= t.hi then nb
      else int_of_float ((x -. t.lo) /. t.width)
    in
    let i = Stdlib.min i nb in
    t.counts.(i) <- t.counts.(i) + 1

  let bucket_count t i = t.counts.(i)
  let total t = Array.fold_left ( + ) 0 t.counts

  let render t =
    let b = Buffer.create 256 in
    let nb = Array.length t.counts - 1 in
    for i = 0 to nb do
      if t.counts.(i) > 0 then begin
        let label =
          if i = nb then Printf.sprintf "[%.3g,inf)" t.hi
          else
            Printf.sprintf "[%.3g,%.3g)"
              (t.lo +. (float_of_int i *. t.width))
              (t.lo +. (float_of_int (i + 1) *. t.width))
        in
        Buffer.add_string b (Printf.sprintf "%-18s %d\n" label t.counts.(i))
      end
    done;
    Buffer.contents b
end

module Engine = Slice_sim.Engine
module Client = Slice_workload.Client
module Specsfs = Slice_workload.Specsfs
module Nfs_server = Slice_baseline.Nfs_server
module Host = Slice_storage.Host

type point = { offered : float; delivered : float; latency_ms : float }

type curve = { name : string; paper_sat : float; points : point list }

type t = { curves : curve list; scale : float }

let n_client_hosts = 4
let processes = 8

let sfs_config ~scale ~offered ~seed =
  {
    Specsfs.default_config with
    offered_iops = offered;
    processes;
    duration = 4.0;
    warmup = 1.0;
    bytes_per_iops = 1e7 *. scale;
    seed;
  }

let slice_point ~scale ~storage_nodes ~offered =
  let cache s = max (1 lsl 20) (int_of_float (float_of_int s *. scale)) in
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes;
        disks_per_node = 8;
        dir_servers = 1;
        smallfile_servers = 2;
        storage_cache = cache (256 * 1024 * 1024);
        smallfile_cache = cache (1024 * 1024 * 1024);
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let clients =
    Array.init n_client_hosts (fun i ->
        let host, _ = Slice.Ensemble.add_client ens ~name:(Printf.sprintf "sfs%d" i) in
        Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ~port:(1000 + i) ())
  in
  let r =
    Specsfs.run eng ~clients ~root:Slice.Ensemble.root
      (sfs_config ~scale ~offered ~seed:(17 + storage_nodes))
  in
  { offered; delivered = r.Specsfs.delivered; latency_ms = r.Specsfs.avg_latency_ms }

let baseline_point ~scale ~offered =
  let eng = Engine.create () in
  let net = Slice_net.Net.create eng () in
  let server_host = Host.create net ~name:"nfs-server" ~disks:8 () in
  let cache = max (1 lsl 20) (int_of_float (512. *. 1024. *. 1024. *. scale)) in
  let server = Nfs_server.attach server_host ~cache_bytes:cache () in
  let clients =
    Array.init n_client_hosts (fun i ->
        let host = Host.create net ~name:(Printf.sprintf "sfs%d" i) () in
        Client.create host ~server:(Nfs_server.addr server) ~port:(1000 + i) ())
  in
  let r =
    Specsfs.run eng ~clients ~root:(Nfs_server.root server) (sfs_config ~scale ~offered ~seed:3)
  in
  { offered; delivered = r.Specsfs.delivered; latency_ms = r.Specsfs.avg_latency_ms }

let loads ~sat_estimate ~n =
  List.init n (fun i ->
      sat_estimate *. (0.4 +. (0.9 *. float_of_int i /. float_of_int (max 1 (n - 1)))))

let compute ?(scale = 0.02) ?(points_per_curve = 4) () =
  let baseline =
    {
      name = "FreeBSD NFS (CCD, 8 disks)";
      paper_sat = 850.0;
      points = List.map (fun o -> baseline_point ~scale ~offered:o) (loads ~sat_estimate:850.0 ~n:points_per_curve);
    }
  in
  let slice_curves =
    List.map
      (fun (n, paper_sat) ->
        {
          name = Printf.sprintf "Slice-%d (%d disks)" n (n * 8);
          paper_sat;
          points =
            List.map
              (fun o -> slice_point ~scale ~storage_nodes:n ~offered:o)
              (loads ~sat_estimate:paper_sat ~n:points_per_curve);
        })
      [ (1, 1000.0); (2, 1900.0); (4, 3500.0); (8, 6600.0) ]
  in
  { curves = baseline :: slice_curves; scale }

let max_delivered c = List.fold_left (fun a p -> Float.max a p.delivered) 0.0 c.points

let curve_lines t =
  List.map
    (fun c ->
      Printf.sprintf "  %-26s %s" c.name
        (String.concat "  "
           (List.map
              (fun p ->
                Printf.sprintf "%5.0f->%5.0f(%4.1fms)" p.offered p.delivered p.latency_ms)
              c.points)))
    t.curves

let report_fig5 t =
  {
    Report.title = "Figure 5: SPECsfs97 delivered throughput at saturation (IOPS)";
    preamble =
      ([
         Printf.sprintf
           "offered -> delivered IOPS (avg latency); file set + caches scaled x%.3f"
           t.scale;
         "1 directory server, 2 small-file servers, N storage nodes x 8 disks.";
       ]
      @ curve_lines t);
    rows =
      List.map
        (fun c ->
          Report.rowf
            ~label:(Printf.sprintf "saturation IOPS, %s" c.name)
            ~paper:c.paper_sat ~measured:(max_delivered c)
            ~note:
              (if c.paper_sat = 850.0 || c.paper_sat = 6600.0 then "paper-reported"
               else "paper value read off Figure 5")
            ())
        t.curves;
  }

(* EMC Celerra 506 (4Q99 spec.org filing, 32 Cheetah data disks, 4 GB
   cache): vendor-reported reference the paper plots for comparison;
   approximate curve, not simulated. *)
let celerra_reference =
  [ (1000.0, 2.9); (2000.0, 3.6); (3000.0, 4.5); (4000.0, 6.1); (4700.0, 9.5) ]

let report_fig6 t =
  let knee_rows =
    List.filter_map
      (fun c ->
        if String.length c.name >= 5 && String.sub c.name 0 5 = "Slice" then
          let lo = List.hd c.points in
          let hi = List.nth c.points (List.length c.points - 1) in
          Some
            (Report.row
               ~label:(Printf.sprintf "latency growth to saturation, %s" c.name)
               ~paper:"rises past cache knee"
               ~measured:(Printf.sprintf "%.1f -> %.1f ms" lo.latency_ms hi.latency_ms)
               ~note:"small-file cache overflow under load" ())
        else None)
      t.curves
  in
  {
    Report.title = "Figure 6: SPECsfs97 latency vs delivered throughput";
    preamble =
      (curve_lines t
      @ [
          "reference: EMC Celerra 506 (vendor-reported, approximate, not simulated):";
          "  "
          ^ String.concat "  "
              (List.map (fun (iops, ms) -> Printf.sprintf "%5.0f:%4.1fms" iops ms) celerra_reference);
        ]);
    rows =
      Report.row ~label:"acceptable latency up to saturation" ~paper:"yes"
        ~measured:"see curves above" ()
      :: knee_rows;
  }

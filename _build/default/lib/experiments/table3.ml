module Engine = Slice_sim.Engine
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar

type datum = { phase : string; paper_pct : float; measured_pct : float }

type t = { rows : datum list; packets_per_sec : float; total_pct : float }

let run ?(scale = 0.05) () =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 0;
        smallfile_servers = 0;
        dir_servers = 1;
        proxy_params = { Slice.Params.default with threshold = 0 };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let host, proxy = Slice.Ensemble.add_client ens ~name:"untar-client" in
  let cl = Client.create host ~server:(Slice.Ensemble.virtual_addr ens) () in
  let elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      elapsed := Untar.run cl ~root:Slice.Ensemble.root ~name:"src" (Untar.scaled_spec scale));
  Engine.run eng;
  let cpu = Slice.Proxy.cpu_breakdown proxy in
  let pct v = v /. !elapsed *. 100.0 in
  let packets =
    Slice.Proxy.packets_intercepted proxy + Slice.Proxy.replies_processed proxy
  in
  let rows =
    [
      { phase = "Packet interception"; paper_pct = 0.7; measured_pct = pct cpu.Slice.Proxy.interception };
      { phase = "Packet decode"; paper_pct = 4.1; measured_pct = pct cpu.Slice.Proxy.decode };
      { phase = "Redirection/rewriting"; paper_pct = 0.5; measured_pct = pct cpu.Slice.Proxy.rewrite };
      { phase = "Soft state logic"; paper_pct = 0.8; measured_pct = pct cpu.Slice.Proxy.soft_state };
    ]
  in
  {
    rows;
    packets_per_sec = float_of_int packets /. !elapsed;
    total_pct = List.fold_left (fun a d -> a +. d.measured_pct) 0.0 rows;
  }

let report ?scale () =
  let t = run ?scale () in
  {
    Report.title = "Table 3: uproxy CPU cost (% of client CPU)";
    preamble =
      [
        Printf.sprintf
          "untar of zero-length files through a client-based uproxy; %.0f packets/s"
          t.packets_per_sec;
        "(paper: 6250 packets/s on a 500 MHz client; 6.1 % total)";
        Printf.sprintf "measured total: %.1f %%" t.total_pct;
      ];
    rows =
      List.map
        (fun d -> Report.rowf ~label:d.phase ~paper:d.paper_pct ~measured:d.measured_pct ())
        t.rows;
  }

type row = { label : string; paper : string; measured : string; note : string }

type t = { title : string; preamble : string list; rows : row list }

let row ?(note = "") ~label ~paper ~measured () = { label; paper; measured; note }

let rowf ?note ~label ~paper ~measured () =
  let note =
    match note with
    | Some n -> n
    | None ->
        if paper = 0.0 then ""
        else Printf.sprintf "x%.2f of paper" (measured /. paper)
  in
  {
    label;
    paper = Printf.sprintf "%.1f" paper;
    measured = Printf.sprintf "%.1f" measured;
    note;
  }

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "\n== %s ==\n" t.title);
  List.iter (fun line -> Buffer.add_string b (line ^ "\n")) t.preamble;
  let w_label =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 24 t.rows
  in
  Buffer.add_string b
    (Printf.sprintf "%-*s  %12s  %12s  %s\n" w_label "" "paper" "measured" "");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %12s  %12s  %s\n" w_label r.label r.paper r.measured r.note))
    t.rows;
  Buffer.contents b

let print t = print_string (to_string t)

(** Table 3: µproxy CPU cost under the name-intensive untar workload.

    The paper profiled a client-based µproxy at 6250 request/response
    packets per second: interception 0.7 %, packet decode 4.1 %,
    redirection/rewriting 0.5 %, soft-state logic 0.8 % (6.1 % total).
    We run the same workload through our µproxy and report the same
    breakdown from its per-phase accounting. *)

type datum = {
  phase : string;
  paper_pct : float;
  measured_pct : float;
}

type t = {
  rows : datum list;
  packets_per_sec : float;
  total_pct : float;
}

val run : ?scale:float -> unit -> t
val report : ?scale:float -> unit -> Report.t

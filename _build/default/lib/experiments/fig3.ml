module Engine = Slice_sim.Engine
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar
module Nfs_server = Slice_baseline.Nfs_server
module Host = Slice_storage.Host

type series = { name : string; points : (int * float) list }

type t = {
  series : series list;
  ops_per_proc : int;
  agg_ops_rate : (string * float) list;
}

let n_client_hosts = 5

(* Run [procs] untar processes against the virtual server backed by
   whatever [setup] wired in; returns the average per-process latency. *)
let run_procs ~eng ~make_client ~root ~procs ~spec =
  let latencies = Array.make procs 0.0 in
  Engine.spawn eng (fun () ->
      Slice_sim.Fiber.join_all eng
        (List.init procs (fun p () ->
             let cl = make_client p in
             latencies.(p) <-
               Untar.run cl ~root ~name:(Printf.sprintf "proc%02d" p) spec)));
  Engine.run eng;
  Array.fold_left ( +. ) 0.0 latencies /. float_of_int procs

let slice_point ~policy ~ndir ~procs ~spec =
  let name_policy, mkdir_p =
    match policy with
    | `Switching -> (Slice.Params.Mkdir_switching, 1.0 /. float_of_int ndir)
    | `Hashing -> (Slice.Params.Name_hashing, 0.0)
  in
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 0;
        smallfile_servers = 0;
        dir_servers = ndir;
        proxy_params = { Slice.Params.default with threshold = 0; name_policy; mkdir_p };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let hosts =
    Array.init n_client_hosts (fun i ->
        fst (Slice.Ensemble.add_client ens ~name:(Printf.sprintf "client%d" i)))
  in
  let make_client p =
    Client.create hosts.(p mod n_client_hosts)
      ~server:(Slice.Ensemble.virtual_addr ens)
      ~port:(1000 + p) ()
  in
  run_procs ~eng ~make_client ~root:Slice.Ensemble.root ~procs ~spec

let mfs_point ~procs ~spec =
  let eng = Engine.create () in
  let net = Slice_net.Net.create eng () in
  let server_host = Host.create net ~name:"mfs-server" () in
  let server = Nfs_server.attach server_host ~mem_only:true () in
  let hosts =
    Array.init n_client_hosts (fun i -> Host.create net ~name:(Printf.sprintf "client%d" i) ())
  in
  let make_client p =
    Client.create hosts.(p mod n_client_hosts) ~server:(Nfs_server.addr server)
      ~port:(1000 + p) ()
  in
  run_procs ~eng ~make_client ~root:(Nfs_server.root server) ~procs ~spec

let run ?(scale = 0.02) ?(procs = [ 1; 2; 4; 8; 16 ]) ?(dir_counts = [ 1; 2; 4 ]) () =
  let spec = Untar.scaled_spec scale in
  let ops = Untar.ops_estimate spec in
  let mfs = { name = "N-MFS"; points = List.map (fun p -> (p, mfs_point ~procs:p ~spec)) procs } in
  let slice_series =
    List.map
      (fun ndir ->
        {
          name = Printf.sprintf "Slice-%d (mkdir switching)" ndir;
          points = List.map (fun p -> (p, slice_point ~policy:`Switching ~ndir ~procs:p ~spec)) procs;
        })
      dir_counts
  in
  let hashing =
    let ndir = List.fold_left max 1 dir_counts in
    {
      name = Printf.sprintf "Slice-%d (name hashing)" ndir;
      points = List.map (fun p -> (p, slice_point ~policy:`Hashing ~ndir ~procs:p ~spec)) procs;
    }
  in
  let series = (mfs :: slice_series) @ [ hashing ] in
  let max_procs = List.fold_left max 1 procs in
  let agg_ops_rate =
    List.map
      (fun s ->
        let lat = List.assoc max_procs s.points in
        (s.name, float_of_int (ops * max_procs) /. lat))
      series
  in
  { series; ops_per_proc = ops; agg_ops_rate }

let report ?scale ?procs ?dir_counts () =
  let t = run ?scale ?procs ?dir_counts () in
  let matrix =
    List.map
      (fun s ->
        Printf.sprintf "  %-28s %s" s.name
          (String.concat "  "
             (List.map (fun (p, l) -> Printf.sprintf "%2d:%6.2fs" p l) s.points)))
      t.series
  in
  let rows =
    List.map
      (fun (name, rate) ->
        let paper =
          if String.length name >= 5 && String.sub name 0 5 = "N-MFS" then 8300.0
          else
            (* Slice-N saturates near N x 6000 ops/s *)
            let n =
              try
                Scanf.sscanf name "Slice-%d" (fun n -> n)
              with _ -> 1
            in
            float_of_int (6000 * n)
        in
        Report.rowf
          ~label:(Printf.sprintf "aggregate ops/s, %s" name)
          ~paper ~measured:rate
          ~note:"paper = saturation bound (6000 ops/s per dir server)" ())
      t.agg_ops_rate
  in
  {
    Report.title = "Figure 3: Directory service scaling (untar latency)";
    preamble =
      ([
         Printf.sprintf
           "avg untar latency per process (s) vs #processes; %d NFS ops per process"
           t.ops_per_proc;
         "shape checks: MFS saturates (steep growth); Slice-N flattens with more";
         "servers; mkdir switching ~= name hashing on this workload.";
       ]
      @ matrix);
    rows;
  }

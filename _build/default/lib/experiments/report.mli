(** Uniform paper-vs-measured reporting for every reproduced exhibit. *)

type row = { label : string; paper : string; measured : string; note : string }

type t = {
  title : string;
  preamble : string list;  (** context lines printed before the rows *)
  rows : row list;
}

val row : ?note:string -> label:string -> paper:string -> measured:string -> unit -> row
val rowf : ?note:string -> label:string -> paper:float -> measured:float -> unit -> row
(** Numeric convenience; prints one decimal and the measured/paper ratio
    as the note when none is given. *)

val print : t -> unit
val to_string : t -> string

module Engine = Slice_sim.Engine
module Client = Slice_workload.Client
module Untar = Slice_workload.Untar

type point = { affinity : float; latency : float; redirect_fraction : float }

type series = { procs : int; points : point list }

type t = { series : series list }

let n_dir = 4
let n_client_hosts = 4

let one_point ~affinity ~procs ~spec =
  let ens =
    Slice.Ensemble.create
      {
        Slice.Ensemble.default_config with
        storage_nodes = 0;
        smallfile_servers = 0;
        dir_servers = n_dir;
        proxy_params =
          {
            Slice.Params.default with
            threshold = 0;
            name_policy = Slice.Params.Mkdir_switching;
            mkdir_p = 1.0 -. affinity;
          };
      }
  in
  let eng = Slice.Ensemble.engine ens in
  let pairs =
    Array.init n_client_hosts (fun i ->
        Slice.Ensemble.add_client ens ~name:(Printf.sprintf "client%d" i))
  in
  let latencies = Array.make procs 0.0 in
  Engine.spawn eng (fun () ->
      Slice_sim.Fiber.join_all eng
        (List.init procs (fun p () ->
             let host, _ = pairs.(p mod n_client_hosts) in
             let cl =
               Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ~port:(1000 + p) ()
             in
             latencies.(p) <-
               Untar.run cl ~root:Slice.Ensemble.root ~name:(Printf.sprintf "proc%02d" p) spec)));
  Engine.run eng;
  let redirects =
    Array.fold_left (fun a (_, px) -> a + Slice.Proxy.mkdir_redirects px) 0 pairs
  in
  let total_mkdirs = procs * ((spec.Untar.files / spec.Untar.dir_every) + 1) in
  {
    affinity;
    latency = Array.fold_left ( +. ) 0.0 latencies /. float_of_int procs;
    redirect_fraction = float_of_int redirects /. float_of_int total_mkdirs;
  }

let run ?(scale = 0.03) ?(affinities = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ])
    ?(proc_counts = [ 1; 4; 8; 16 ]) () =
  let spec = Untar.scaled_spec scale in
  {
    series =
      List.map
        (fun procs ->
          { procs; points = List.map (fun a -> one_point ~affinity:a ~procs ~spec) affinities })
        proc_counts;
  }

let report ?scale ?affinities ?proc_counts () =
  let t = run ?scale ?affinities ?proc_counts () in
  let matrix =
    List.map
      (fun s ->
        Printf.sprintf "  %2d procs: %s" s.procs
          (String.concat "  "
             (List.map (fun p -> Printf.sprintf "%.2f:%6.2fs" p.affinity p.latency) s.points)))
      t.series
  in
  (* Shape rows: compare the heaviest load's latency at moderate affinity
     vs affinity 1 (the paper's blow-up), and the redirect fraction at the
     operating point the paper highlights (< 20 %). *)
  let heavy = List.nth t.series (List.length t.series - 1) in
  let latency_at a =
    (List.find (fun p -> Float.abs (p.affinity -. a) < 1e-9) heavy.points).latency
  in
  let best =
    List.fold_left (fun acc p -> Float.min acc p.latency) infinity heavy.points
  in
  let p075 = List.find (fun p -> Float.abs (p.affinity -. 0.75) < 1e-9) heavy.points in
  let rows =
    [
      Report.row ~label:(Printf.sprintf "%d procs: affinity-1.0 / best latency" heavy.procs)
        ~paper:"> 1 (degrades)"
        ~measured:(Printf.sprintf "%.2f" (latency_at 1.0 /. best))
        ~note:"load concentrates on one of the 4 servers" ();
      Report.row ~label:"redirect fraction at affinity 0.75"
        ~paper:"< 20 %"
        ~measured:(Printf.sprintf "%.1f %%" (p075.redirect_fraction *. 100.))
        ~note:"even distribution with few redirected mkdirs" ();
      Report.row ~label:"light load (1 proc) affinity sensitivity"
        ~paper:"flat"
        ~measured:
          (let s1 = List.hd t.series in
           let lats = List.map (fun p -> p.latency) s1.points in
           Printf.sprintf "%.2f..%.2fs"
             (List.fold_left Float.min infinity lats)
             (List.fold_left Float.max 0.0 lats))
        ~note:"single server handles a light load at any affinity" ();
    ]
  in
  {
    Report.title = "Figure 4: Impact of affinity (1-p) for mkdir switching";
    preamble =
      ([
         "avg untar latency (s) by affinity, 4 directory servers; paper: slight dip";
         "with rising affinity, then sharp degradation near affinity 1 under load.";
       ]
      @ matrix);
    rows;
  }

(** Figures 5 and 6: SPECsfs97 throughput and latency.

    Slice configurations with one directory server, two small-file
    servers, and 1/2/4/8 storage nodes (8 disks each) against the
    baseline single FreeBSD NFS server exporting its array as one volume
    (850 IOPS at saturation). Paper findings: delivered IOPS scale with
    storage nodes up to ~6600 IOPS for Slice-8 (64 disks, arm-bound);
    latency stays acceptable up to saturation with a jump when the
    small-file servers overflow their 1 GB caches.

    The [scale] knob shrinks the SPECsfs file-set rule (10 MB/IOPS) and
    all server caches by the same factor, preserving where the knee falls
    relative to load. *)

type point = { offered : float; delivered : float; latency_ms : float }

type curve = { name : string; paper_sat : float; points : point list }

type t = { curves : curve list; scale : float }

val compute : ?scale:float -> ?points_per_curve:int -> unit -> t
(** Default scale 0.02, 4 load points per configuration. *)

val report_fig5 : t -> Report.t
val report_fig6 : t -> Report.t

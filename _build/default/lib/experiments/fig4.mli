(** Figure 4: impact of directory affinity (1 - p) for mkdir switching.

    Four directory servers; client processes run the untar workload while
    the µproxy's redirection probability p sweeps from 1 (affinity 0,
    every mkdir redirected) to 0 (affinity 1, subtrees never leave the
    parent's site). The paper's findings: light loads are insensitive;
    heavy loads improve slightly as affinity rises (fewer cross-server
    operations), then degrade sharply near affinity 1 as load concentrates
    on one server; even distributions are achievable while redirecting
    fewer than 20 % of directory creates. *)

type point = { affinity : float; latency : float; redirect_fraction : float }

type series = { procs : int; points : point list }

type t = { series : series list }

val run : ?scale:float -> ?affinities:float list -> ?proc_counts:int list -> unit -> t
(** Defaults: scale 0.03, affinities [0;0.25;0.5;0.75;0.9;1.0],
    proc_counts [1;4;8;16]. *)

val report : ?scale:float -> ?affinities:float list -> ?proc_counts:int list -> unit -> Report.t

module Engine = Slice_sim.Engine
module Fh = Slice_nfs.Fh
module Client = Slice_workload.Client

type datum = { config : string; paper_mbs : float; measured_mbs : float }

(* Storage nodes accept NFS file handles as object identifiers, so bulk
   I/O needs no prior create at a directory server — exactly the dd setup
   the paper used on a pre-made volume. File ids are chosen so primary
   stripe/mirror sites rotate across the array, like a placement policy
   laying out a fresh volume. *)
let file_fh ~idx ~mirrored =
  let rec probe id =
    let fh =
      { Fh.file_id = Int64.of_int id; gen = 1; ftype = Fh.Reg; mirrored; attr_site = 0; cap = 0L }
    in
    if Slice_nfs.Routekey.file_site ~nsites:8 fh = idx mod 8 then fh else probe (id + 1)
  in
  probe (7_000_000 + (idx * 1000))

let make_ensemble () =
  Slice.Ensemble.create
    {
      Slice.Ensemble.default_config with
      storage_nodes = 8;
      disks_per_node = 8;
      dir_servers = 1;
      smallfile_servers = 0;
      proxy_params = { Slice.Params.default with threshold = 0 };
    }

(* One configuration: [clients] dd streams of [bytes] each; returns
   aggregate MB/s. Writers prime the data; readers run on a fresh
   ensemble primed by an untimed write pass. *)
let run_config ~clients ~bytes ~mirrored ~read =
  (* saturation runs use more streams than storage nodes so the array,
     not the client stacks, is the limit *)
  let ens = make_ensemble () in
  let eng = Slice.Ensemble.engine ens in
  let cls =
    Array.init clients (fun i ->
        let host, _proxy = Slice.Ensemble.add_client ens ~name:(Printf.sprintf "dd%d" i) in
        Client.create host ~server:(Slice.Ensemble.virtual_addr ens) ())
  in
  let elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      (* priming pass for reads (not timed): populate the objects, then
         cold-cache the nodes so the timed pass measures the disk path *)
      if read then begin
        Slice_sim.Fiber.join_all eng
          (List.init clients (fun i () ->
               Client.sequential_write cls.(i) (file_fh ~idx:i ~mirrored) ~bytes));
        Array.iter Slice_storage.Obsd.drop_caches (Slice.Ensemble.storage ens)
      end;
      let t0 = Engine.now eng in
      Slice_sim.Fiber.join_all eng
        (List.init clients (fun i () ->
             let fh = file_fh ~idx:i ~mirrored in
             if read then Client.sequential_read cls.(i) fh ~bytes
             else
               (* dd timing: elapsed to the last write RPC; the flush tail
                  (commit) completes afterwards, untimed *)
               Client.sequential_write cls.(i) ~commit:false fh ~bytes));
      elapsed := Engine.now eng -. t0;
      if not read then
        Slice_sim.Fiber.join_all eng
          (List.init clients (fun i () ->
               ignore (Client.commit cls.(i) (file_fh ~idx:i ~mirrored)))));
  Engine.run eng;
  let total_mb = Int64.to_float bytes *. float_of_int clients /. 1e6 in
  total_mb /. !elapsed

let run ?(scale = 0.1) () =
  let bytes = Int64.of_float (1.25e9 *. scale) in
  let bench ~clients ~mirrored ~read = run_config ~clients ~bytes ~mirrored ~read in
  [
    { config = "read, single client"; paper_mbs = 62.5; measured_mbs = bench ~clients:1 ~mirrored:false ~read:true };
    { config = "write, single client"; paper_mbs = 38.9; measured_mbs = bench ~clients:1 ~mirrored:false ~read:false };
    { config = "read-mirrored, single client"; paper_mbs = 52.9; measured_mbs = bench ~clients:1 ~mirrored:true ~read:true };
    { config = "write-mirrored, single client"; paper_mbs = 32.2; measured_mbs = bench ~clients:1 ~mirrored:true ~read:false };
    { config = "read, saturation"; paper_mbs = 437.0; measured_mbs = bench ~clients:16 ~mirrored:false ~read:true };
    { config = "write, saturation"; paper_mbs = 479.0; measured_mbs = bench ~clients:16 ~mirrored:false ~read:false };
    { config = "read-mirrored, saturation"; paper_mbs = 222.0; measured_mbs = bench ~clients:16 ~mirrored:true ~read:true };
    { config = "write-mirrored, saturation"; paper_mbs = 251.0; measured_mbs = bench ~clients:16 ~mirrored:true ~read:false };
  ]

let report ?scale () =
  let data = run ?scale () in
  {
    Report.title = "Table 2: Bulk I/O bandwidth (MB/s)";
    preamble =
      [
        "dd sequential I/O, 32 KB NFS requests, read-ahead 4, striped over 8 storage";
        "nodes x 8 disks; mirrored = 2 replicas. Single client is client-stack bound;";
        "saturation is bound by the storage nodes' channels (and halved by mirroring).";
      ];
    rows =
      List.map
        (fun d -> Report.rowf ~label:d.config ~paper:d.paper_mbs ~measured:d.measured_mbs ())
        data;
  }

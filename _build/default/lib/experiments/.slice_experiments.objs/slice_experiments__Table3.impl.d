lib/experiments/table3.ml: List Printf Report Slice Slice_sim Slice_workload

lib/experiments/fig5.ml: Array Float List Printf Report Slice Slice_baseline Slice_net Slice_sim Slice_storage Slice_workload String

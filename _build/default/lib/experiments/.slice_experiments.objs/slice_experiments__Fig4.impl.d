lib/experiments/fig4.ml: Array Float List Printf Report Slice Slice_sim Slice_workload String

lib/experiments/table2.ml: Array Int64 List Printf Report Slice Slice_nfs Slice_sim Slice_storage Slice_workload

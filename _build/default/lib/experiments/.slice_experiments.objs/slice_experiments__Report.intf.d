lib/experiments/report.mli:

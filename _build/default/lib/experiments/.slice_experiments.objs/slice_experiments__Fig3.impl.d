lib/experiments/fig3.ml: Array List Printf Report Scanf Slice Slice_baseline Slice_net Slice_sim Slice_storage Slice_workload String

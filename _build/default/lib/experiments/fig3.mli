(** Figure 3: directory service scaling.

    Untar processes (36 000 files/dirs, ~250 000 NFS ops each at full
    scale) run against N directory servers under mkdir switching
    (p = 1/N) and name hashing, and against the N-MFS baseline (one
    memory-filesystem NFS server). The paper's findings: MFS is initially
    faster (no Slice logging) but its single CPU saturates; Slice scales
    with more directory servers, each saturating near 6000 ops/s; the two
    routing policies perform identically on this many-directory
    workload. *)

type series = { name : string; points : (int * float) list }
(** (client processes, average untar latency in seconds per process) *)

type t = {
  series : series list;
  ops_per_proc : int;
  agg_ops_rate : (string * float) list;
      (** aggregate ops/s at the largest process count, per series *)
}

val run : ?scale:float -> ?procs:int list -> ?dir_counts:int list -> unit -> t
(** Defaults: scale 0.02 (≈720 files/proc), procs [1;2;4;8;16],
    dir_counts [1;2;4]. *)

val report : ?scale:float -> ?procs:int list -> ?dir_counts:int list -> unit -> Report.t

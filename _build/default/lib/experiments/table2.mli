(** Table 2: bulk I/O bandwidth.

    dd-style sequential read/write of a large file through the µproxy
    onto an 8-node storage array (64 Cheetah-class disks), unmirrored and
    2-way mirrored; one client (client-stack-bound) and eight clients
    (storage-node-channel-bound). *)

type datum = {
  config : string;
  paper_mbs : float;
  measured_mbs : float;
}

val run : ?scale:float -> unit -> datum list
(** [scale] shrinks the 1.25 GB per-client file (default 0.1). *)

val report : ?scale:float -> unit -> Report.t

lib/xdr/xdr.mli:

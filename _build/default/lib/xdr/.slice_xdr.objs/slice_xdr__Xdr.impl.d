lib/xdr/xdr.ml: Buffer Bytes Int32 String

lib/baseline/nfs_server.ml: Bytes Hashtbl Int64 List Slice_disk Slice_nfs Slice_sim Slice_storage String

lib/baseline/nfs_server.mli: Slice_net Slice_nfs Slice_storage

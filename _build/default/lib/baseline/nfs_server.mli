(** Baseline monolithic NFS server.

    Models the evaluation's comparison points: a single FreeBSD 4.0 NFS
    server exporting its whole disk array as one volume over a CCD
    concatenator (Figure 5's 850-IOPS baseline), and — with [mem_only] —
    the N-MFS memory-filesystem server of Figure 3 (faster per-op, no
    logging, but one CPU that saturates).

    Serves the full NFS V3 subset on one host: name space, attributes and
    file data together, data through a buffer cache over the local array.
    No µproxy is involved; clients address this server directly. *)

type t

val attach :
  Slice_storage.Host.t ->
  ?port:int ->
  ?cache_bytes:int ->
  ?per_op_cpu:float ->
  ?mem_only:bool ->
  unit ->
  t
(** Defaults: port 2049, 512 MB cache, 150 µs/op CPU (a 450 MHz PC
    kernel NFS stack), disk-backed. [mem_only] serves everything from
    memory (MFS) at 120 µs/op unless [per_op_cpu] overrides. *)

val addr : t -> Slice_net.Packet.addr
val root : t -> Slice_nfs.Fh.t
val ops_served : t -> int
val file_count : t -> int
